//! Node-local in-memory storage.
//!
//! Models each compute node's local RAM-disk/SSD where the paper's
//! checkpoint library first writes its checkpoints (§IV-C). The defining
//! property, and the whole reason neighbor-level checkpointing exists, is
//! that **this storage dies with the node**: [`NodeStorage::attach`]
//! registers a fault-plane hook that wipes a node's blobs the moment the
//! node is killed. Checkpoints survive only where the library replicated
//! them — the neighbor node or the (slow) parallel file system.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::fault::FaultPlane;
use crate::topology::{NodeId, Rank, Topology};

/// Identifies one stored blob: which rank produced it, an application tag
/// (e.g. "lanczos-state" vs "comm-plan"), and a monotonically increasing
/// version (checkpoint number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlobKey {
    /// Producing rank.
    pub rank: Rank,
    /// Application-chosen stream tag.
    pub tag: u32,
    /// Version / checkpoint counter.
    pub version: u64,
}

type Shelf = HashMap<BlobKey, Arc<Vec<u8>>>;

/// Per-node blob stores for a whole simulated cluster.
pub struct NodeStorage {
    topo: Topology,
    shelves: Vec<Mutex<Shelf>>,
}

impl NodeStorage {
    /// Empty storage for every node in the topology.
    pub fn new(topo: Topology) -> Arc<Self> {
        let shelves = (0..topo.num_nodes()).map(|_| Mutex::new(Shelf::new())).collect();
        Arc::new(Self { topo, shelves })
    }

    /// Register the kill hook that wipes a node's shelf when the node dies.
    /// Call once after construction.
    pub fn attach(self: &Arc<Self>, fault: &FaultPlane) {
        let me = Arc::clone(self);
        fault.on_kill(move |ev| {
            if let Some(node) = ev.node {
                me.clear_node(node);
            }
        });
    }

    fn shelf(&self, node: NodeId) -> &Mutex<Shelf> {
        &self.shelves[node.0 as usize]
    }

    /// Store a blob on `node`. Overwrites an existing blob with the same
    /// key.
    pub fn put(&self, node: NodeId, key: BlobKey, data: Arc<Vec<u8>>) {
        self.shelf(node).lock().insert(key, data);
    }

    /// Fetch a blob from `node`.
    pub fn get(&self, node: NodeId, key: BlobKey) -> Option<Arc<Vec<u8>>> {
        self.shelf(node).lock().get(&key).cloned()
    }

    /// Remove a blob; returns whether it existed.
    pub fn remove(&self, node: NodeId, key: BlobKey) -> bool {
        self.shelf(node).lock().remove(&key).is_some()
    }

    /// Latest version stored on `node` for `(rank, tag)`.
    pub fn latest_version(&self, node: NodeId, rank: Rank, tag: u32) -> Option<u64> {
        self.shelf(node)
            .lock()
            .keys()
            .filter(|k| k.rank == rank && k.tag == tag)
            .map(|k| k.version)
            .max()
    }

    /// All versions stored on `node` for `(rank, tag)`, newest first.
    /// The checkpoint writer walks this when restoring: try the newest
    /// manifest, fall back to older ones on a gap.
    pub fn versions_of(&self, node: NodeId, rank: Rank, tag: u32) -> Vec<u64> {
        let mut vs: Vec<u64> = self
            .shelf(node)
            .lock()
            .keys()
            .filter(|k| k.rank == rank && k.tag == tag)
            .map(|k| k.version)
            .collect();
        vs.sort_unstable_by(|a, b| b.cmp(a));
        vs
    }

    /// Drop all versions of `(rank, tag)` on `node` older than
    /// `keep_from`. Returns how many blobs were pruned. The checkpoint
    /// writer uses this to keep a bounded history.
    pub fn prune(&self, node: NodeId, rank: Rank, tag: u32, keep_from: u64) -> usize {
        let mut shelf = self.shelf(node).lock();
        let before = shelf.len();
        shelf.retain(|k, _| !(k.rank == rank && k.tag == tag && k.version < keep_from));
        before - shelf.len()
    }

    /// Wipe everything on a node (the kill hook, also useful in tests).
    pub fn clear_node(&self, node: NodeId) {
        self.shelf(node).lock().clear();
    }

    /// Total bytes resident on `node`.
    pub fn bytes_on(&self, node: NodeId) -> usize {
        self.shelf(node).lock().values().map(|v| v.len()).sum()
    }

    /// Number of blobs on `node`.
    pub fn blobs_on(&self, node: NodeId) -> usize {
        self.shelf(node).lock().len()
    }

    /// The topology this storage belongs to.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(rank: Rank, version: u64) -> BlobKey {
        BlobKey { rank, tag: 7, version }
    }

    #[test]
    fn put_get_remove() {
        let s = NodeStorage::new(Topology::new(4, 2));
        let data = Arc::new(vec![1u8, 2, 3]);
        s.put(NodeId(0), key(0, 1), Arc::clone(&data));
        assert_eq!(s.get(NodeId(0), key(0, 1)).as_deref(), Some(&vec![1, 2, 3]));
        assert_eq!(s.bytes_on(NodeId(0)), 3);
        assert!(s.remove(NodeId(0), key(0, 1)));
        assert!(!s.remove(NodeId(0), key(0, 1)));
        assert_eq!(s.get(NodeId(0), key(0, 1)), None);
    }

    #[test]
    fn latest_version_and_prune() {
        let s = NodeStorage::new(Topology::new(2, 1));
        for v in 1..=5 {
            s.put(NodeId(0), key(0, v), Arc::new(vec![0u8; 8]));
        }
        assert_eq!(s.latest_version(NodeId(0), 0, 7), Some(5));
        assert_eq!(s.prune(NodeId(0), 0, 7, 4), 3);
        assert_eq!(s.blobs_on(NodeId(0)), 2);
        assert_eq!(s.latest_version(NodeId(0), 0, 7), Some(5));
        // Other tags untouched by prune.
        s.put(NodeId(0), BlobKey { rank: 0, tag: 9, version: 1 }, Arc::new(vec![]));
        assert_eq!(s.prune(NodeId(0), 0, 7, 100), 2);
        assert_eq!(s.blobs_on(NodeId(0)), 1);
    }

    #[test]
    fn versions_of_lists_newest_first() {
        let s = NodeStorage::new(Topology::new(2, 1));
        for v in [3u64, 1, 5] {
            s.put(NodeId(0), key(0, v), Arc::new(vec![0u8; 4]));
        }
        s.put(NodeId(0), BlobKey { rank: 0, tag: 9, version: 8 }, Arc::new(vec![]));
        assert_eq!(s.versions_of(NodeId(0), 0, 7), vec![5, 3, 1]);
        assert!(s.versions_of(NodeId(0), 1, 7).is_empty());
    }

    #[test]
    fn node_kill_wipes_local_blobs_only() {
        let topo = Topology::new(4, 2); // nodes {0: r0,r1} {1: r2,r3}
        let fault = FaultPlane::new(topo.clone());
        let s = NodeStorage::new(topo);
        s.attach(&fault);
        s.put(NodeId(0), key(0, 1), Arc::new(vec![9u8; 16]));
        s.put(NodeId(1), key(0, 1), Arc::new(vec![9u8; 16])); // neighbor replica
        fault.kill_node(NodeId(0));
        assert_eq!(s.get(NodeId(0), key(0, 1)), None, "local copy died with the node");
        assert!(s.get(NodeId(1), key(0, 1)).is_some(), "neighbor replica survives");
    }

    #[test]
    fn rank_kill_does_not_wipe_node() {
        let topo = Topology::new(4, 2);
        let fault = FaultPlane::new(topo.clone());
        let s = NodeStorage::new(topo);
        s.attach(&fault);
        s.put(NodeId(0), key(0, 1), Arc::new(vec![1u8]));
        fault.kill_rank(0);
        assert!(s.get(NodeId(0), key(0, 1)).is_some());
    }
}
