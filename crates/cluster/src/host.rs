//! Rank hosting: *where ranks live* and *how they are killed*.
//!
//! The transport seam ([`crate::transport::Transport`]) abstracts the
//! wire; [`RankHost`] abstracts the other half of the backend split — the
//! substrate a rank executes on and the mechanism that enforces its death:
//!
//! * [`ThreadHost`] — ranks are OS threads in one process; a "kill"
//!   poisons the rank's liveness flag on the shared [`FaultPlane`] and the
//!   victim unwinds at its next communication call (cooperative
//!   fail-stop, as the in-memory simulator has always done).
//! * `ft_core::process::ProcessHost` — ranks are OS processes; a kill is
//!   a genuine `SIGKILL` delivered by the supervisor, with no cooperation
//!   from the victim (the paper's external `kill -9`).
//!
//! Wall-clock fault schedules ([`crate::FaultSchedule`]) are applied
//! through this trait so the same schedule drives either backend.

use std::sync::Arc;

use crate::fault::FaultPlane;
use crate::topology::{NodeId, Rank, Topology};

/// How ranks are placed and killed. Implementations must be idempotent:
/// killing an already-dead rank or node is a no-op.
pub trait RankHost: Send + Sync {
    /// The placement this host runs.
    fn topology(&self) -> &Topology;

    /// Enforce the death of one rank.
    fn kill_rank(&self, rank: Rank);

    /// Enforce the death of a node and every rank on it (node-local state
    /// dies with it).
    fn kill_node(&self, node: NodeId);
}

/// The in-process host: every rank is a thread, and kills poison liveness
/// flags on the shared fault plane.
pub struct ThreadHost {
    fault: Arc<FaultPlane>,
}

impl ThreadHost {
    /// Host ranks on threads governed by `fault`.
    pub fn new(fault: Arc<FaultPlane>) -> Self {
        Self { fault }
    }
}

impl RankHost for ThreadHost {
    fn topology(&self) -> &Topology {
        self.fault.topology()
    }

    fn kill_rank(&self, rank: Rank) {
        self.fault.kill_rank(rank);
    }

    fn kill_node(&self, node: NodeId) {
        self.fault.kill_node(node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_host_kills_through_fault_plane() {
        let fault = FaultPlane::new(Topology::new(4, 2));
        let host: Arc<dyn RankHost> = Arc::new(ThreadHost::new(Arc::clone(&fault)));
        assert_eq!(host.topology().num_ranks(), 4);
        host.kill_rank(1);
        assert!(!fault.is_alive(1));
        host.kill_node(NodeId(1));
        assert!(!fault.is_alive(2));
        assert!(!fault.is_alive(3));
        assert!(!fault.node_is_alive(NodeId(1)));
        // Idempotent.
        host.kill_rank(1);
        host.kill_node(NodeId(1));
    }
}
