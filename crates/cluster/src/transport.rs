//! The transport seam: a [`Transport`] trait over pluggable backends, plus
//! the in-memory [`SimTransport`] backend (a *sharded* timing-wheel
//! scheduler).
//!
//! ## The seam
//!
//! Everything above this crate (the GASPI runtime, the checkpoint
//! replicator) talks to an `Arc<dyn Transport>`:
//!
//! * [`Transport::bind`] registers the per-rank [`Endpoint`] that services
//!   incoming messages — the GASPI layer's endpoint decodes RDMA puts,
//!   reads, pings, atomics, collective tokens from the payload and applies
//!   them to the rank's segments.
//! * [`Transport::send`] is fire-and-forget with a completion: the remote
//!   endpoint runs at delivery, its (small) reply travels back with the
//!   [`Completion`], and the completion observes [`Outcome::Broken`] when
//!   the destination is dead or unreachable.
//! * [`Transport::call`] is a round trip: the reply is itself subject to
//!   transport latency/failure on the way back (RDMA read semantics).
//! * [`Transport::call_fanout`] posts one request to many destinations in
//!   a single pass — the epoch-batched scan primitive the fault detector
//!   uses to amortize one traversal of liveness state over all targets.
//!
//! Two backends implement the trait: [`SimTransport`] here (one OS
//! process, simulated latency and failures — deterministic, fast) and
//! `tcp::TcpTransport` (each rank a real OS process, length-delimited
//! binary RPC over TCP, real `SIGKILL` death).
//!
//! ## SimTransport semantics
//!
//! Every message is an [`Envelope`]: source, destination, queue id, a
//! payload byte count (for the latency model), and an *action* closure that
//! runs when the message is delivered.
//!
//! * **Latency.** Delivery happens `latency(bytes)` (± jitter) after the
//!   post. Latency is modeled by *timestamps*, not by executing slowly:
//!   a thousand concurrent messages each with 20 µs latency all complete
//!   ≈20 µs after posting — which is exactly how the paper's threaded
//!   fault detector pings many processes "in parallel on different
//!   communication queues" at the cost of one.
//! * **Ordering.** Messages with the same `(src, queue, dst)` stream key
//!   are delivered in post order (GASPI orders notified writes relative to
//!   writes on the same queue/target). Different streams are unordered.
//! * **Failures.** At *delivery time* the transport consults the
//!   [`FaultPlane`]: if the destination is dead or the directed link is
//!   broken, the action runs with [`Outcome::Broken`] after an additional
//!   break-detection delay. If the *source* died after posting, the
//!   message is dropped silently (the initiator no longer exists to
//!   observe a completion) — though its remote effects may still have
//!   happened earlier, as with real RDMA.
//! * **Shutdown.** Dropping the [`TransportOwner`] stops the scheduler
//!   threads; undelivered actions run with [`Outcome::Cancelled`] so
//!   resources waiting on them unblock.
//!
//! ## Sharding and determinism
//!
//! The wheel is split into [`default_shards`] shards, each with its own
//! binary heap, lock, condvar, and scheduler thread. A message belongs to
//! the shard of its *destination's node group*
//! (`node_of(dst) % shards`), so:
//!
//! * every `(src, queue, dst)` stream lives entirely inside one shard and
//!   per-stream FIFO needs no cross-shard coordination;
//! * all deliveries *to* one rank are executed by exactly one scheduler
//!   thread, which serializes [`Endpoint::handle`] per destination rank —
//!   the property that keeps GASPI's remote atomics atomic (they only
//!   ever touch the destination rank's own segment state);
//! * a node kill invalidates messages of exactly one shard's worth of
//!   co-located ranks.
//!
//! Latency jitter is drawn from counter-based per-stream RNG streams
//! ([`stream_jitter_u`]): the draw for the `n`-th message of a stream
//! depends only on `(root seed, src, queue, dst, n)` — never on
//! cross-thread arrival order or on the shard count. Two runs with the
//! same seed therefore assign bit-identical latencies to every message of
//! every stream, which is what keeps the seeded chaos sweeps reproducible
//! (the pre-shard global `Mutex<SmallRng>` could not guarantee this: its
//! draw order depended on lock-acquisition order across threads).

use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, RwLock};

use crate::fault::FaultPlane;
use crate::metrics::Metrics;
use crate::time::LatencyModel;
use crate::topology::Rank;

/// Queue identifier; the GASPI layer maps its communication queues and a
/// reserved service queue (pings, control) onto these.
pub type QueueId = u16;

/// How a message ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Delivered to a live destination over an intact link.
    Delivered,
    /// Destination dead or link broken; reported after the break-detection
    /// delay.
    Broken,
    /// Transport shut down before delivery.
    Cancelled,
}

/// Completion callback for [`Transport::send`]/[`Transport::call`]. Runs
/// off the caller's thread (network/scheduler or socket-reader thread)
/// with the final [`Outcome`] and the remote endpoint's reply bytes
/// (empty unless `Delivered`).
///
/// If the *source* rank dies while the message is in flight, the
/// completion is dropped without running — the initiator no longer exists
/// to observe it.
pub type Completion = Box<dyn FnOnce(Outcome, Vec<u8>) + Send>;

/// Per-destination completion for [`Transport::call_fanout`]: invoked once
/// per destination with that destination's outcome and reply. Shared via
/// `Arc` because one batch fans out to many concurrent deliveries.
pub type FanoutCompletion = Arc<dyn Fn(Rank, Outcome, Vec<u8>) + Send + Sync>;

/// Per-rank message handler: the receiving side of the seam. The GASPI
/// runtime binds one per rank; it decodes the payload (put/read/ping/…)
/// against that rank's own state and returns the reply bytes.
///
/// `handle` runs on a transport-internal thread and is serialized *per
/// destination rank* by every backend (the sim delivers all of a rank's
/// messages from the one shard thread owning that rank's node group; the
/// TCP backend holds its process-wide dispatch lock), which is what makes
/// GASPI's remote atomics atomic — they only touch the destination rank's
/// own segment state. It must never block on transport completions and
/// must never unwind.
pub trait Endpoint: Send + Sync {
    /// Service one incoming message from `src` on `queue`.
    fn handle(&self, src: Rank, queue: QueueId, msg: &[u8]) -> Vec<u8>;
}

/// The pluggable wire. See the module docs for the contract; both the
/// in-memory simulator and the real-process TCP backend implement this,
/// and the whole GASPI runtime above is backend-agnostic.
pub trait Transport: Send + Sync {
    /// Register the endpoint servicing messages addressed to `rank`.
    fn bind(&self, rank: Rank, endpoint: Arc<dyn Endpoint>);

    /// One-way message with completion. `cost` is the byte count charged
    /// to the latency model (payload + header equivalents); the endpoint's
    /// reply rides back with the completion "for free" (it models a NIC
    ///-level ack/status, not a second data transfer).
    fn send(
        &self,
        src: Rank,
        dst: Rank,
        queue: QueueId,
        cost: usize,
        msg: Vec<u8>,
        done: Completion,
    );

    /// Round trip: like [`Transport::send`], but the reply is a data
    /// transfer in its own right — it is charged `reply.len()` on the way
    /// back and can itself break in flight.
    fn call(
        &self,
        src: Rank,
        dst: Rank,
        queue: QueueId,
        cost: usize,
        msg: Vec<u8>,
        done: Completion,
    );

    /// Fan one round-trip request out to every rank in `dsts` ("epoch
    /// batch"): the payload is shared, `done` runs once per destination
    /// with that destination's outcome and reply.
    ///
    /// The provided implementation loops over [`Transport::call`];
    /// [`SimTransport`] overrides it to traverse its shard locks once per
    /// batch instead of once per message, which is the primitive behind
    /// the fault detector's epoch-batched ping scans.
    fn call_fanout(
        &self,
        src: Rank,
        dsts: &[Rank],
        queue: QueueId,
        cost: usize,
        msg: Arc<[u8]>,
        done: FanoutCompletion,
    ) {
        for &dst in dsts {
            let done = Arc::clone(&done);
            self.call(
                src,
                dst,
                queue,
                cost,
                msg.to_vec(),
                Box::new(move |out, reply| done(dst, out, reply)),
            );
        }
    }

    /// The fault plane this transport consults for liveness/link state.
    fn fault(&self) -> &Arc<FaultPlane>;

    /// Transport counters.
    fn metrics(&self) -> &Arc<Metrics>;

    /// The latency model in effect (the TCP backend reports the model its
    /// timeouts were derived from; actual latency is the real network's).
    fn model(&self) -> &LatencyModel;

    /// Request shutdown: queued work cancels, completions unblock.
    fn shutdown(&self);
}

/// Action executed at delivery time, on the owning shard's scheduler
/// thread. It receives a transport handle so it can post follow-up
/// messages (pong replies, collective forwarding).
pub type Action = Box<dyn FnOnce(&SimTransport, Outcome) + Send>;

/// A message in flight.
pub struct Envelope {
    /// Posting rank.
    pub src: Rank,
    /// Destination rank.
    pub dst: Rank,
    /// Stream/queue id — messages on the same `(src, queue, dst)` stream
    /// deliver in post order.
    pub queue: QueueId,
    /// Payload size used by the latency model (the data itself lives in
    /// the action closure).
    pub bytes: usize,
    /// Runs at delivery.
    pub action: Action,
}

/// Payload bytes carried by the built-in send/call work kinds: either an
/// owned buffer or a batch-shared one (a fan-out posts *one* allocation
/// for all destinations).
enum MsgBuf {
    Owned(Vec<u8>),
    Shared(Arc<[u8]>),
}

impl std::ops::Deref for MsgBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match self {
            MsgBuf::Owned(v) => v,
            MsgBuf::Shared(a) => a,
        }
    }
}

/// What to do when a scheduled record comes due. `Send`/`Call`/`Reply`
/// exist so the hot path carries the caller's completion directly instead
/// of allocating a wrapper closure per message (the pre-shard design
/// boxed an adapter `Action` around every `Completion`).
enum Work {
    /// Raw action closure ([`SimTransport::post`]).
    Act(Action),
    /// [`Transport::send`]: run the endpoint, reply rides back for free.
    Send { msg: MsgBuf, done: Completion },
    /// [`Transport::call`] request leg: run the endpoint, then schedule
    /// the reply as a charged transfer of its own.
    Call { msg: MsgBuf, done: Completion },
    /// [`Transport::call`] reply leg.
    Reply { reply: Vec<u8>, done: Completion },
    /// [`Transport::call_fanout`] request leg for one destination.
    /// `for_dst` pins the destination the shared callback is told about,
    /// because a failed record is readdressed home (src → src) and the
    /// envelope's own `dst` no longer names the pinged rank by then.
    Fanout { msg: MsgBuf, done: FanoutCompletion, for_dst: Rank },
    /// Fan-out reply leg (`for_dst` = the rank that was fanned out to).
    FanoutReply { reply: Vec<u8>, done: FanoutCompletion, for_dst: Rank },
}

/// Internal scheduled record: an envelope's fields plus its work and the
/// failure flag a break-detection follow-up carries back to the source.
struct Env {
    src: Rank,
    dst: Rank,
    queue: QueueId,
    bytes: usize,
    /// Set on the rescheduled break report: at delivery the work fires
    /// with [`Outcome::Broken`] instead of touching an endpoint.
    failed: bool,
    work: Work,
}

struct Scheduled {
    due: Instant,
    seq: u64,
    env: Env,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // BinaryHeap is a max-heap; invert for earliest-due-first, with the
        // shard-local post sequence as a deterministic tie-break.
        other.due.cmp(&self.due).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// FNV-1a — the stream table sits on the post hot path; SipHash's keyed
/// setup cost is measurable there and collision resistance buys nothing
/// against our own rank ids.
#[derive(Default)]
struct Fnv(u64);

impl Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { 0xcbf2_9ce4_8422_2325 } else { self.0 };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

type StreamKey = (Rank, QueueId, Rank);

/// Per-stream scheduling state: the FIFO watermark and the jitter-draw
/// counter.
struct StreamState {
    /// Latest due time already scheduled on this stream — a later post can
    /// never be delivered before an earlier one.
    due: Instant,
    /// Messages drawn on this stream so far; indexes [`stream_jitter_u`].
    n: u64,
}

struct ShardState {
    heap: BinaryHeap<Scheduled>,
    streams: HashMap<StreamKey, StreamState, BuildHasherDefault<Fnv>>,
    /// Shard-local post sequence (tie-break only).
    seq: u64,
}

struct Shard {
    state: Mutex<ShardState>,
    cv: Condvar,
}

impl Shard {
    fn new() -> Self {
        Self {
            state: Mutex::new(ShardState {
                heap: BinaryHeap::with_capacity(64),
                streams: HashMap::with_capacity_and_hasher(64, BuildHasherDefault::default()),
                seq: 0,
            }),
            cv: Condvar::new(),
        }
    }
}

struct Inner {
    model: LatencyModel,
    fault: Arc<FaultPlane>,
    metrics: Arc<Metrics>,
    shards: Vec<Shard>,
    seed: u64,
    shutdown: AtomicBool,
    /// Rank-indexed endpoint table. Read on every delivery, written only
    /// during setup — an `RwLock<Vec<_>>` read is uncontended where the
    /// pre-shard `Mutex<HashMap<_, _>>` serialized every delivery.
    endpoints: RwLock<Vec<Option<Arc<dyn Endpoint>>>>,
}

impl Inner {
    #[inline]
    fn shard_of(&self, dst: Rank) -> &Shard {
        // Shard by the destination's *node group* so co-located ranks (and
        // therefore every stream toward them) share a scheduler thread.
        let node = self.fault.topology().node_of(dst).0 as usize;
        &self.shards[node % self.shards.len()]
    }
}

/// Default shard count for [`SimTransport::start`]: `FT_NET_SHARDS` if
/// set, else the machine's available parallelism, clamped to `1..=8`
/// (past ~8 shards the fault-plane reads dominate, not the wheel locks).
pub fn default_shards() -> usize {
    if let Some(n) = std::env::var("FT_NET_SHARDS").ok().and_then(|s| s.parse::<usize>().ok()) {
        return n.clamp(1, 64);
    }
    std::thread::available_parallelism().map_or(1, |n| n.get()).clamp(1, 8)
}

/// Counter-based per-stream jitter draw in `[0, 1)`.
///
/// The value depends only on `(seed, src, queue, dst, n)` — the identity
/// of a stream and the index of the message within it — so latency
/// assignment is reproducible across runs, thread interleavings, and
/// shard counts. This replaces the pre-shard global `Mutex<SmallRng>`,
/// whose draws depended on lock-acquisition order.
pub fn stream_jitter_u(seed: u64, src: Rank, queue: QueueId, dst: Rank, n: u64) -> f64 {
    let key = (u64::from(src) << 33) ^ (u64::from(dst) << 1) ^ (u64::from(queue) << 52);
    let mut x =
        seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ n.wrapping_mul(0xD1B5_4A32_D192_ED03);
    // SplitMix64 finalizer.
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    // 53 mantissa bits → uniform in [0, 1).
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Cheap-to-clone handle to the simulated interconnect. The scheduler
/// threads are owned by [`TransportOwner`]; handles stay valid (but post
/// cancelled messages) after shutdown.
#[derive(Clone)]
pub struct SimTransport {
    inner: Arc<Inner>,
}

/// Owns the scheduler threads; dropping it shuts the network down and
/// joins them.
///
/// Teardown ordering contract: `stop()` first requests shutdown, then
/// joins every shard thread. Each shard's final act is to drain its wheel
/// and run every still-queued action with [`Outcome::Cancelled`] —
/// *outside* the shard lock, so a cancelled action may itself post (its
/// follow-up runs inline, also cancelled) without deadlocking. A post
/// that races shutdown re-checks the flag under the shard lock and drains
/// the shard itself if the scheduler already exited, so no action is ever
/// leaked. By the time `stop()` returns, every action that was ever
/// posted has run exactly once and the threads are gone; owners must
/// therefore be dropped *before* the state those actions reference.
pub struct TransportOwner {
    t: SimTransport,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl SimTransport {
    /// Start the transport with [`default_shards`] shards.
    pub fn start(model: LatencyModel, fault: Arc<FaultPlane>, seed: u64) -> TransportOwner {
        Self::start_sharded(model, fault, seed, default_shards())
    }

    /// Start the transport with an explicit shard count (≥ 1). One
    /// scheduler thread per shard; message semantics — per-stream FIFO,
    /// latency assignment, failure reporting — are identical for every
    /// shard count.
    pub fn start_sharded(
        model: LatencyModel,
        fault: Arc<FaultPlane>,
        seed: u64,
        shards: usize,
    ) -> TransportOwner {
        let shards = shards.max(1);
        let num_ranks = fault.topology().num_ranks() as usize;
        let inner = Arc::new(Inner {
            model,
            fault,
            metrics: Arc::new(Metrics::default()),
            shards: (0..shards).map(|_| Shard::new()).collect(),
            seed,
            shutdown: AtomicBool::new(false),
            endpoints: RwLock::new(vec![None; num_ranks]),
        });
        let t = SimTransport { inner };
        let handles = (0..shards)
            .map(|i| {
                let t2 = t.clone();
                std::thread::Builder::new()
                    .name(format!("sim-net-{i}"))
                    .spawn(move || t2.run(i))
                    .expect("spawn network shard thread")
            })
            .collect();
        TransportOwner { t, handles }
    }

    /// The latency model in effect.
    pub fn model(&self) -> &LatencyModel {
        &self.inner.model
    }

    /// The fault plane the transport consults.
    pub fn fault(&self) -> &Arc<FaultPlane> {
        &self.inner.fault
    }

    /// Transport counters.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.inner.metrics
    }

    /// The number of timing-wheel shards (scheduler threads).
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// The endpoint bound to `rank`, if any.
    fn endpoint(&self, rank: Rank) -> Option<Arc<dyn Endpoint>> {
        self.inner.endpoints.read().get(rank as usize).cloned().flatten()
    }

    /// Post a message. Returns immediately; the action runs on the owning
    /// shard's scheduler thread when the message is due. Posting after
    /// shutdown runs the action inline with [`Outcome::Cancelled`].
    pub fn post(&self, env: Envelope) {
        let Envelope { src, dst, queue, bytes, action } = env;
        self.post_work(
            Env { src, dst, queue, bytes, failed: false, work: Work::Act(action) },
            None,
        );
    }

    /// Post with an explicit one-way delay instead of the model's latency
    /// (used for timed follow-ups and tests).
    pub fn post_after(&self, env: Envelope, delay: Duration) {
        let Envelope { src, dst, queue, bytes, action } = env;
        self.post_work(
            Env { src, dst, queue, bytes, failed: false, work: Work::Act(action) },
            Some(delay),
        );
    }

    /// Shared post path. `delay: None` means "charge the latency model
    /// (with the stream's deterministic jitter draw)".
    fn post_work(&self, env: Env, delay: Option<Duration>) {
        if self.inner.shutdown.load(Ordering::Acquire) {
            fire(self, env.work, Outcome::Cancelled);
            return;
        }
        // Passive: posting also happens on shard threads (nested response
        // posts), which must never unwind with `RankKilled`.
        self.inner.fault.site_passive(env.src, "transport.post");
        self.inner.metrics.msg_posted.fetch_add(1, Ordering::Relaxed);
        self.inner.metrics.bytes_posted.fetch_add(env.bytes as u64, Ordering::Relaxed);
        let shard = self.inner.shard_of(env.dst);
        let doomed = {
            let mut st = shard.state.lock();
            schedule_locked(&self.inner, &mut st, env, delay, Instant::now());
            // Re-check under the lock: if shutdown won the race the shard
            // thread may already have drained and exited — reclaim and
            // cancel everything ourselves (each record is drained by
            // exactly one side because both drain under this lock).
            if self.inner.shutdown.load(Ordering::Acquire) {
                Some(std::mem::take(&mut st.heap))
            } else {
                None
            }
        };
        match doomed {
            Some(heap) => {
                for s in heap {
                    fire(self, s.env.work, Outcome::Cancelled);
                }
            }
            None => shard.cv.notify_one(),
        }
    }

    /// Post a whole batch of same-source records in one pass: shard locks
    /// are taken once per shard, not once per message.
    fn post_batch(&self, envs: Vec<Env>, delay: Option<Duration>) {
        if envs.is_empty() {
            return;
        }
        if self.inner.shutdown.load(Ordering::Acquire) {
            for env in envs {
                fire(self, env.work, Outcome::Cancelled);
            }
            return;
        }
        self.inner.fault.site_passive(envs[0].src, "transport.post");
        self.inner.metrics.msg_posted.fetch_add(envs.len() as u64, Ordering::Relaxed);
        let total: u64 = envs.iter().map(|e| e.bytes as u64).sum();
        self.inner.metrics.bytes_posted.fetch_add(total, Ordering::Relaxed);
        self.inner.metrics.batch_posts.fetch_add(1, Ordering::Relaxed);
        // Group by shard index, preserving per-shard post order.
        let nshards = self.inner.shards.len();
        let mut by_shard: Vec<Vec<Env>> = (0..nshards).map(|_| Vec::new()).collect();
        for env in envs {
            let node = self.inner.fault.topology().node_of(env.dst).0 as usize;
            by_shard[node % nshards].push(env);
        }
        let now = Instant::now();
        for (i, group) in by_shard.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let shard = &self.inner.shards[i];
            let doomed = {
                let mut st = shard.state.lock();
                for env in group {
                    schedule_locked(&self.inner, &mut st, env, delay, now);
                }
                if self.inner.shutdown.load(Ordering::Acquire) {
                    Some(std::mem::take(&mut st.heap))
                } else {
                    None
                }
            };
            match doomed {
                Some(heap) => {
                    for s in heap {
                        fire(self, s.env.work, Outcome::Cancelled);
                    }
                }
                None => shard.cv.notify_one(),
            }
        }
    }

    /// One shard's scheduler loop.
    fn run(&self, shard_idx: usize) {
        let shard = &self.inner.shards[shard_idx];
        loop {
            let next = {
                let mut st = shard.state.lock();
                loop {
                    if self.inner.shutdown.load(Ordering::Acquire) {
                        // Drain: cancel everything still queued in this
                        // shard (outside the lock — cancelled actions may
                        // post follow-ups, which cancel inline).
                        let heap = std::mem::take(&mut st.heap);
                        drop(st);
                        for s in heap {
                            fire(self, s.env.work, Outcome::Cancelled);
                        }
                        return;
                    }
                    let now = Instant::now();
                    match st.heap.peek() {
                        Some(s) if s.due <= now => break st.heap.pop().unwrap(),
                        Some(s) => {
                            let due = s.due;
                            shard.cv.wait_until(&mut st, due);
                        }
                        None => {
                            shard.cv.wait_for(&mut st, Duration::from_millis(5));
                        }
                    }
                }
            };
            self.deliver(next.env);
        }
    }

    fn deliver(&self, env: Env) {
        let fault = &self.inner.fault;
        if !fault.is_alive(env.src) {
            // Initiator died in flight: nobody is left to observe the
            // completion; drop it. (Remote memory effects of *earlier*
            // messages have already happened, as with a real NIC.)
            self.inner.metrics.msg_dropped_dead_src.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if env.failed {
            // The delayed break report arriving back at the source.
            fire(self, env.work, Outcome::Broken);
            return;
        }
        if fault.is_alive(env.dst) && fault.link_ok(env.src, env.dst) {
            // Self-deliveries are internal follow-ups; they don't count as
            // network deliveries.
            if env.src != env.dst {
                self.inner.metrics.msg_delivered.fetch_add(1, Ordering::Relaxed);
            }
            self.execute(env);
        } else {
            // Report the break after the detection delay; the report
            // travels back to the source on the same queue.
            self.inner.metrics.msg_broken.fetch_add(1, Ordering::Relaxed);
            let delay = self.inner.model.break_detect;
            let Env { src, queue, work, .. } = env;
            self.post_work(Env { src, dst: src, queue, bytes: 0, failed: true, work }, Some(delay));
        }
    }

    /// Run a successfully delivered record's work on the shard thread.
    fn execute(&self, env: Env) {
        let Env { src, dst, queue, work, .. } = env;
        match work {
            Work::Act(action) => action(self, Outcome::Delivered),
            Work::Send { msg, done } => {
                let reply = match self.endpoint(dst) {
                    Some(ep) => ep.handle(src, queue, &msg),
                    None => Vec::new(),
                };
                done(Outcome::Delivered, reply);
            }
            Work::Call { msg, done } => {
                let reply = match self.endpoint(dst) {
                    Some(ep) => ep.handle(src, queue, &msg),
                    None => Vec::new(),
                };
                // The reply is a data transfer of its own: charged its
                // length, delivered (or broken) on the stream back.
                let bytes = reply.len();
                self.post_work(
                    Env {
                        src: dst,
                        dst: src,
                        queue,
                        bytes,
                        failed: false,
                        work: Work::Reply { reply, done },
                    },
                    None,
                );
            }
            Work::Reply { reply, done } => done(Outcome::Delivered, reply),
            Work::Fanout { msg, done, for_dst } => {
                let reply = match self.endpoint(dst) {
                    Some(ep) => ep.handle(src, queue, &msg),
                    None => Vec::new(),
                };
                let bytes = reply.len();
                self.post_work(
                    Env {
                        src: dst,
                        dst: src,
                        queue,
                        bytes,
                        failed: false,
                        work: Work::FanoutReply { reply, done, for_dst },
                    },
                    None,
                );
            }
            Work::FanoutReply { reply, done, for_dst } => done(for_dst, Outcome::Delivered, reply),
        }
    }

    /// Request shutdown (queued actions cancel). Prefer dropping the
    /// [`TransportOwner`], which also joins the scheduler threads.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        for shard in &self.inner.shards {
            shard.cv.notify_all();
        }
    }
}

/// Compute the due time (jitter draw + FIFO watermark) and push, all under
/// the shard lock. `now` is hoisted so batches charge a common post time.
fn schedule_locked(
    inner: &Inner,
    st: &mut ShardState,
    env: Env,
    delay: Option<Duration>,
    now: Instant,
) {
    let key = (env.src, env.queue, env.dst);
    let seq = st.seq;
    st.seq += 1;
    let entry = st.streams.entry(key).or_insert(StreamState { due: now, n: 0 });
    let lat = match delay {
        Some(d) => d,
        None => {
            let u = stream_jitter_u(inner.seed, env.src, env.queue, env.dst, entry.n);
            inner.model.latency_jittered(env.bytes, u)
        }
    };
    entry.n += 1;
    let mut due = now + lat;
    if due <= entry.due {
        due = entry.due + Duration::from_nanos(1);
    }
    entry.due = due;
    st.heap.push(Scheduled { due, seq, env });
}

/// Terminate a record's work with a non-delivered outcome (or a fan-out
/// reply that made it home). Never touches an endpoint.
fn fire(t: &SimTransport, work: Work, out: Outcome) {
    debug_assert_ne!(out, Outcome::Delivered);
    match work {
        Work::Act(action) => action(t, out),
        Work::Send { done, .. } | Work::Call { done, .. } | Work::Reply { done, .. } => {
            done(out, Vec::new());
        }
        Work::Fanout { done, for_dst, .. } | Work::FanoutReply { done, for_dst, .. } => {
            done(for_dst, out, Vec::new());
        }
    }
}

impl Transport for SimTransport {
    fn bind(&self, rank: Rank, endpoint: Arc<dyn Endpoint>) {
        let mut eps = self.inner.endpoints.write();
        if (rank as usize) >= eps.len() {
            eps.resize(rank as usize + 1, None);
        }
        eps[rank as usize] = Some(endpoint);
    }

    fn send(
        &self,
        src: Rank,
        dst: Rank,
        queue: QueueId,
        cost: usize,
        msg: Vec<u8>,
        done: Completion,
    ) {
        self.post_work(
            Env {
                src,
                dst,
                queue,
                bytes: cost,
                failed: false,
                work: Work::Send { msg: MsgBuf::Owned(msg), done },
            },
            None,
        );
    }

    fn call(
        &self,
        src: Rank,
        dst: Rank,
        queue: QueueId,
        cost: usize,
        msg: Vec<u8>,
        done: Completion,
    ) {
        self.post_work(
            Env {
                src,
                dst,
                queue,
                bytes: cost,
                failed: false,
                work: Work::Call { msg: MsgBuf::Owned(msg), done },
            },
            None,
        );
    }

    fn call_fanout(
        &self,
        src: Rank,
        dsts: &[Rank],
        queue: QueueId,
        cost: usize,
        msg: Arc<[u8]>,
        done: FanoutCompletion,
    ) {
        let envs: Vec<Env> = dsts
            .iter()
            .map(|&dst| Env {
                src,
                dst,
                queue,
                bytes: cost,
                failed: false,
                work: Work::Fanout {
                    msg: MsgBuf::Shared(Arc::clone(&msg)),
                    done: Arc::clone(&done),
                    for_dst: dst,
                },
            })
            .collect();
        self.post_batch(envs, None);
    }

    fn fault(&self) -> &Arc<FaultPlane> {
        SimTransport::fault(self)
    }

    fn metrics(&self) -> &Arc<Metrics> {
        SimTransport::metrics(self)
    }

    fn model(&self) -> &LatencyModel {
        SimTransport::model(self)
    }

    fn shutdown(&self) {
        SimTransport::shutdown(self);
    }
}

impl TransportOwner {
    /// A shareable handle to the network.
    pub fn handle(&self) -> SimTransport {
        self.t.clone()
    }

    /// Shut down and join the scheduler threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.t.shutdown();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for TransportOwner {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use std::sync::mpsc;

    fn setup(n: u32) -> (TransportOwner, Arc<FaultPlane>) {
        let fault = FaultPlane::new(Topology::one_per_node(n));
        let t = SimTransport::start(LatencyModel::deterministic_fast(), Arc::clone(&fault), 42);
        (t, fault)
    }

    fn send_and_wait(t: &SimTransport, src: Rank, dst: Rank, queue: QueueId) -> Outcome {
        let (tx, rx) = mpsc::channel();
        t.post(Envelope {
            src,
            dst,
            queue,
            bytes: 8,
            action: Box::new(move |_, out| {
                let _ = tx.send(out);
            }),
        });
        rx.recv_timeout(Duration::from_secs(5)).expect("delivery")
    }

    #[test]
    fn delivers_to_live_rank() {
        let (o, _f) = setup(2);
        assert_eq!(send_and_wait(&o.handle(), 0, 1, 0), Outcome::Delivered);
    }

    #[test]
    fn breaks_to_dead_rank() {
        let (o, f) = setup(2);
        f.kill_rank(1);
        assert_eq!(send_and_wait(&o.handle(), 0, 1, 0), Outcome::Broken);
    }

    #[test]
    fn breaks_on_broken_link_even_if_alive() {
        let (o, f) = setup(2);
        f.break_link_directed(0, 1);
        assert_eq!(send_and_wait(&o.handle(), 0, 1, 0), Outcome::Broken);
        // Reverse direction still fine.
        assert_eq!(send_and_wait(&o.handle(), 1, 0, 0), Outcome::Delivered);
    }

    #[test]
    fn drops_when_source_is_dead() {
        let (o, f) = setup(2);
        f.kill_rank(0);
        let t = o.handle();
        let (tx, rx) = mpsc::channel::<Outcome>();
        t.post(Envelope {
            src: 0,
            dst: 1,
            queue: 0,
            bytes: 0,
            action: Box::new(move |_, out| {
                let _ = tx.send(out);
            }),
        });
        assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
        assert_eq!(t.metrics().msg_dropped_dead_src.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn per_stream_fifo_order() {
        let (o, _f) = setup(2);
        let t = o.handle();
        let (tx, rx) = mpsc::channel();
        // Large first message, tiny second: without the stream watermark the
        // second would be due earlier.
        for (i, bytes) in [(0u32, 1_000_000usize), (1, 0)] {
            let tx = tx.clone();
            t.post(Envelope {
                src: 0,
                dst: 1,
                queue: 3,
                bytes,
                action: Box::new(move |_, _| {
                    let _ = tx.send(i);
                }),
            });
        }
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 0);
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 1);
    }

    #[test]
    fn action_can_post_followup() {
        let (o, _f) = setup(3);
        let (tx, rx) = mpsc::channel();
        o.handle().post(Envelope {
            src: 0,
            dst: 1,
            queue: 0,
            bytes: 0,
            action: Box::new(move |tr, out| {
                assert_eq!(out, Outcome::Delivered);
                // pong back
                tr.post(Envelope {
                    src: 1,
                    dst: 0,
                    queue: 0,
                    bytes: 0,
                    action: Box::new(move |_, out2| {
                        let _ = tx.send(out2);
                    }),
                });
            }),
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), Outcome::Delivered);
    }

    #[test]
    fn shutdown_cancels_pending() {
        let (o, _f) = setup(2);
        let (tx, rx) = mpsc::channel();
        o.handle().post_after(
            Envelope {
                src: 0,
                dst: 1,
                queue: 0,
                bytes: 0,
                action: Box::new(move |_, out| {
                    let _ = tx.send(out);
                }),
            },
            Duration::from_secs(3600),
        );
        o.shutdown();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), Outcome::Cancelled);
    }

    #[test]
    fn latency_is_respected() {
        let fault = FaultPlane::new(Topology::one_per_node(2));
        let model = LatencyModel {
            base: Duration::from_millis(5),
            per_byte_ns: 0.0,
            jitter: 0.0,
            break_detect: Duration::from_micros(50),
        };
        let o = SimTransport::start(model, fault, 1);
        let start = Instant::now();
        assert_eq!(send_and_wait(&o.handle(), 0, 1, 0), Outcome::Delivered);
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn metrics_count_messages() {
        let (o, f) = setup(2);
        let t = o.handle();
        assert_eq!(send_and_wait(&t, 0, 1, 0), Outcome::Delivered);
        f.kill_rank(1);
        assert_eq!(send_and_wait(&t, 0, 1, 0), Outcome::Broken);
        let m = t.metrics();
        assert!(m.msg_posted.load(Ordering::Relaxed) >= 2);
        assert_eq!(m.msg_delivered.load(Ordering::Relaxed), 1);
        assert_eq!(m.msg_broken.load(Ordering::Relaxed), 1);
    }

    // ---- Transport-trait surface --------------------------------------

    /// Echo endpoint: replies with `[src as u8, queue as u8]` + payload.
    struct Echo;
    impl Endpoint for Echo {
        fn handle(&self, src: Rank, queue: QueueId, msg: &[u8]) -> Vec<u8> {
            let mut out = vec![src as u8, queue as u8];
            out.extend_from_slice(msg);
            out
        }
    }

    #[test]
    fn trait_send_runs_endpoint_and_returns_reply() {
        let (o, _f) = setup(2);
        let t: Arc<dyn Transport> = Arc::new(o.handle());
        t.bind(1, Arc::new(Echo));
        let (tx, rx) = mpsc::channel();
        t.send(
            0,
            1,
            3,
            16,
            vec![0xAA],
            Box::new(move |out, reply| {
                let _ = tx.send((out, reply));
            }),
        );
        let (out, reply) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(out, Outcome::Delivered);
        assert_eq!(reply, vec![0, 3, 0xAA]);
    }

    #[test]
    fn trait_call_round_trips_and_breaks_to_dead_rank() {
        let (o, f) = setup(2);
        let t: Arc<dyn Transport> = Arc::new(o.handle());
        t.bind(1, Arc::new(Echo));
        let (tx, rx) = mpsc::channel();
        let tx2 = tx.clone();
        t.call(
            0,
            1,
            0,
            8,
            vec![1, 2],
            Box::new(move |out, reply| {
                let _ = tx2.send((out, reply));
            }),
        );
        let (out, reply) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(out, Outcome::Delivered);
        assert_eq!(reply, vec![0, 0, 1, 2]);

        f.kill_rank(1);
        t.call(
            0,
            1,
            0,
            8,
            vec![9],
            Box::new(move |out, reply| {
                let _ = tx.send((out, reply));
            }),
        );
        let (out, reply) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(out, Outcome::Broken);
        assert!(reply.is_empty());
    }

    /// Fan-out posts one batch and reports a per-destination outcome: live
    /// ranks round-trip an echo, the dead one comes back `Broken` with its
    /// own rank attached.
    #[test]
    fn call_fanout_reports_per_destination_outcomes() {
        let (o, f) = setup(4);
        let t: Arc<dyn Transport> = Arc::new(o.handle());
        for r in 0..4 {
            t.bind(r, Arc::new(Echo));
        }
        f.kill_rank(2);
        let (tx, rx) = mpsc::channel();
        let payload: Arc<[u8]> = Arc::from(vec![7u8].into_boxed_slice());
        t.call_fanout(
            0,
            &[1, 2, 3],
            5,
            8,
            payload,
            Arc::new(move |rank, out, reply| {
                let _ = tx.send((rank, out, reply));
            }),
        );
        let mut got: Vec<(Rank, Outcome, Vec<u8>)> =
            (0..3).map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap()).collect();
        got.sort_by_key(|(r, _, _)| *r);
        assert_eq!(got[0], (1, Outcome::Delivered, vec![0, 5, 7]));
        assert_eq!(got[1].0, 2);
        assert_eq!(got[1].1, Outcome::Broken);
        assert!(got[1].2.is_empty());
        assert_eq!(got[2], (3, Outcome::Delivered, vec![0, 5, 7]));
        // The whole batch was one post pass.
        assert_eq!(t.metrics().batch_posts.load(Ordering::Relaxed), 1);
    }

    /// The jitter draw is a pure function of (seed, stream identity, n):
    /// bit-identical across calls, uniform-ish in [0, 1), and decorrelated
    /// across message indices and seeds.
    #[test]
    fn stream_jitter_is_pure_and_seed_dependent() {
        let a = stream_jitter_u(42, 3, 1, 9, 0);
        let b = stream_jitter_u(42, 3, 1, 9, 0);
        assert_eq!(a.to_bits(), b.to_bits());
        assert!((0.0..1.0).contains(&a));
        assert_ne!(
            stream_jitter_u(42, 3, 1, 9, 0).to_bits(),
            stream_jitter_u(42, 3, 1, 9, 1).to_bits()
        );
        assert_ne!(
            stream_jitter_u(42, 3, 1, 9, 0).to_bits(),
            stream_jitter_u(43, 3, 1, 9, 0).to_bits()
        );
        // Streams with swapped src/dst draw independently.
        assert_ne!(
            stream_jitter_u(42, 3, 1, 9, 0).to_bits(),
            stream_jitter_u(42, 9, 1, 3, 0).to_bits()
        );
    }

    /// Per-stream FIFO holds for every shard count, including when ranks
    /// land on different shards.
    #[test]
    fn fifo_holds_across_shard_counts() {
        for shards in [1usize, 2, 4] {
            let fault = FaultPlane::new(Topology::one_per_node(8));
            let o = SimTransport::start_sharded(
                LatencyModel::default_sim(),
                Arc::clone(&fault),
                7,
                shards,
            );
            let t = o.handle();
            assert_eq!(t.shards(), shards);
            let (tx, rx) = mpsc::channel();
            const PER_STREAM: u32 = 20;
            for i in 0..PER_STREAM {
                for dst in [1u32, 5] {
                    let tx = tx.clone();
                    t.post(Envelope {
                        src: 0,
                        dst,
                        queue: 2,
                        bytes: if i % 3 == 0 { 4096 } else { 0 },
                        action: Box::new(move |_, out| {
                            assert_eq!(out, Outcome::Delivered);
                            let _ = tx.send((dst, i));
                        }),
                    });
                }
            }
            let mut next = HashMap::new();
            for _ in 0..(2 * PER_STREAM) {
                let (dst, i) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
                let n = next.entry(dst).or_insert(0u32);
                assert_eq!(*n, i, "stream to {dst} out of order with {shards} shards");
                *n += 1;
            }
        }
    }

    /// Satellite regression: dropping the owner while the wheel is full of
    /// far-future deliveries must (a) not deadlock, (b) run every action
    /// exactly once with `Cancelled`, and (c) survive cancelled actions
    /// that post follow-ups from inside the drain (the follow-up runs
    /// inline, also cancelled).
    #[test]
    fn teardown_with_inflight_deliveries_runs_every_action_once() {
        use std::sync::atomic::AtomicUsize;
        let (o, _f) = setup(4);
        let t = o.handle();
        let ran = Arc::new(AtomicUsize::new(0));
        const N: usize = 64;
        for i in 0..N {
            let ran = Arc::clone(&ran);
            let t2 = t.clone();
            t.post_after(
                Envelope {
                    src: (i % 4) as Rank,
                    dst: ((i + 1) % 4) as Rank,
                    queue: (i % 3) as QueueId,
                    bytes: 8,
                    action: Box::new(move |_, out| {
                        assert_eq!(out, Outcome::Cancelled);
                        ran.fetch_add(1, Ordering::SeqCst);
                        let ran2 = Arc::clone(&ran);
                        // A follow-up posted during cancellation must still
                        // complete (inline, cancelled) instead of leaking.
                        t2.post(Envelope {
                            src: 0,
                            dst: 1,
                            queue: 0,
                            bytes: 0,
                            action: Box::new(move |_, out2| {
                                assert_eq!(out2, Outcome::Cancelled);
                                ran2.fetch_add(1, Ordering::SeqCst);
                            }),
                        });
                    }),
                },
                Duration::from_secs(3600),
            );
        }
        drop(o); // shutdown + join; must not hang
        assert_eq!(ran.load(Ordering::SeqCst), 2 * N);
        // The handle stays usable post-shutdown: posts cancel inline.
        let ran3 = Arc::clone(&ran);
        t.post(Envelope {
            src: 0,
            dst: 1,
            queue: 0,
            bytes: 0,
            action: Box::new(move |_, out| {
                assert_eq!(out, Outcome::Cancelled);
                ran3.fetch_add(1, Ordering::SeqCst);
            }),
        });
        assert_eq!(ran.load(Ordering::SeqCst), 2 * N + 1);
    }
}
