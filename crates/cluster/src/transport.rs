//! The transport seam: a [`Transport`] trait over pluggable backends, plus
//! the in-memory [`SimTransport`] backend (a timing-wheel scheduler).
//!
//! ## The seam
//!
//! Everything above this crate (the GASPI runtime, the checkpoint
//! replicator) talks to an `Arc<dyn Transport>`:
//!
//! * [`Transport::bind`] registers the per-rank [`Endpoint`] that services
//!   incoming messages — the GASPI layer's endpoint decodes RDMA puts,
//!   reads, pings, atomics, collective tokens from the payload and applies
//!   them to the rank's segments.
//! * [`Transport::send`] is fire-and-forget with a completion: the remote
//!   endpoint runs at delivery, its (small) reply travels back with the
//!   [`Completion`], and the completion observes [`Outcome::Broken`] when
//!   the destination is dead or unreachable.
//! * [`Transport::call`] is a round trip: the reply is itself subject to
//!   transport latency/failure on the way back (RDMA read semantics).
//!
//! Two backends implement the trait: [`SimTransport`] here (one OS
//! process, simulated latency and failures — deterministic, fast) and
//! `tcp::TcpTransport` (each rank a real OS process, length-delimited
//! binary RPC over TCP, real `SIGKILL` death).
//!
//! ## SimTransport semantics
//!
//! Every message is an [`Envelope`]: source, destination, queue id, a
//! payload byte count (for the latency model), and an *action* closure that
//! runs when the message is delivered.
//!
//! * **Latency.** Delivery happens `latency(bytes)` (± jitter) after the
//!   post. Latency is modeled by *timestamps*, not by executing slowly:
//!   a thousand concurrent messages each with 20 µs latency all complete
//!   ≈20 µs after posting — which is exactly how the paper's threaded
//!   fault detector pings many processes "in parallel on different
//!   communication queues" at the cost of one.
//! * **Ordering.** Messages with the same `(src, queue, dst)` stream key
//!   are delivered in post order (GASPI orders notified writes relative to
//!   writes on the same queue/target). Different streams are unordered.
//! * **Failures.** At *delivery time* the transport consults the
//!   [`FaultPlane`]: if the destination is dead or the directed link is
//!   broken, the action runs with [`Outcome::Broken`] after an additional
//!   break-detection delay. If the *source* died after posting, the
//!   message is dropped silently (the initiator no longer exists to
//!   observe a completion) — though its remote effects may still have
//!   happened earlier, as with real RDMA.
//! * **Shutdown.** Dropping the [`TransportOwner`] stops the scheduler
//!   thread; undelivered actions run with [`Outcome::Cancelled`] so
//!   resources waiting on them unblock.

use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::fault::FaultPlane;
use crate::metrics::Metrics;
use crate::time::LatencyModel;
use crate::topology::Rank;

/// Queue identifier; the GASPI layer maps its communication queues and a
/// reserved service queue (pings, control) onto these.
pub type QueueId = u16;

/// How a message ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Delivered to a live destination over an intact link.
    Delivered,
    /// Destination dead or link broken; reported after the break-detection
    /// delay.
    Broken,
    /// Transport shut down before delivery.
    Cancelled,
}

/// Completion callback for [`Transport::send`]/[`Transport::call`]. Runs
/// off the caller's thread (network/scheduler or socket-reader thread)
/// with the final [`Outcome`] and the remote endpoint's reply bytes
/// (empty unless `Delivered`).
///
/// If the *source* rank dies while the message is in flight, the
/// completion is dropped without running — the initiator no longer exists
/// to observe it.
pub type Completion = Box<dyn FnOnce(Outcome, Vec<u8>) + Send>;

/// Per-rank message handler: the receiving side of the seam. The GASPI
/// runtime binds one per rank; it decodes the payload (put/read/ping/…)
/// against that rank's own state and returns the reply bytes.
///
/// `handle` runs on a transport-internal thread, serialized per backend
/// (the sim's single scheduler thread; the TCP backend's dispatch lock),
/// which is what makes GASPI's global atomics atomic. It must never block
/// on transport completions and must never unwind.
pub trait Endpoint: Send + Sync {
    /// Service one incoming message from `src` on `queue`.
    fn handle(&self, src: Rank, queue: QueueId, msg: Vec<u8>) -> Vec<u8>;
}

/// The pluggable wire. See the module docs for the contract; both the
/// in-memory simulator and the real-process TCP backend implement this,
/// and the whole GASPI runtime above is backend-agnostic.
pub trait Transport: Send + Sync {
    /// Register the endpoint servicing messages addressed to `rank`.
    fn bind(&self, rank: Rank, endpoint: Arc<dyn Endpoint>);

    /// One-way message with completion. `cost` is the byte count charged
    /// to the latency model (payload + header equivalents); the endpoint's
    /// reply rides back with the completion "for free" (it models a NIC
    ///-level ack/status, not a second data transfer).
    fn send(
        &self,
        src: Rank,
        dst: Rank,
        queue: QueueId,
        cost: usize,
        msg: Vec<u8>,
        done: Completion,
    );

    /// Round trip: like [`Transport::send`], but the reply is a data
    /// transfer in its own right — it is charged `reply.len()` on the way
    /// back and can itself break in flight.
    fn call(
        &self,
        src: Rank,
        dst: Rank,
        queue: QueueId,
        cost: usize,
        msg: Vec<u8>,
        done: Completion,
    );

    /// The fault plane this transport consults for liveness/link state.
    fn fault(&self) -> &Arc<FaultPlane>;

    /// Transport counters.
    fn metrics(&self) -> &Arc<Metrics>;

    /// The latency model in effect (the TCP backend reports the model its
    /// timeouts were derived from; actual latency is the real network's).
    fn model(&self) -> &LatencyModel;

    /// Request shutdown: queued work cancels, completions unblock.
    fn shutdown(&self);
}

/// Action executed at delivery time, on the network thread. It receives a
/// transport handle so it can post follow-up messages (pong replies,
/// collective forwarding).
pub type Action = Box<dyn FnOnce(&SimTransport, Outcome) + Send>;

/// A message in flight.
pub struct Envelope {
    /// Posting rank.
    pub src: Rank,
    /// Destination rank.
    pub dst: Rank,
    /// Stream/queue id — messages on the same `(src, queue, dst)` stream
    /// deliver in post order.
    pub queue: QueueId,
    /// Payload size used by the latency model (the data itself lives in
    /// the action closure).
    pub bytes: usize,
    /// Runs at delivery.
    pub action: Action,
}

struct Scheduled {
    due: Instant,
    seq: u64,
    env: Envelope,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // BinaryHeap is a max-heap; invert for earliest-due-first, with the
        // post sequence as a deterministic tie-break.
        other.due.cmp(&self.due).then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Default)]
struct HeapState {
    heap: BinaryHeap<Scheduled>,
    /// Per-stream watermark: the latest due time already scheduled, so a
    /// later post can never be delivered before an earlier one.
    stream_due: HashMap<(Rank, QueueId, Rank), Instant>,
}

struct Inner {
    model: LatencyModel,
    fault: Arc<FaultPlane>,
    metrics: Arc<Metrics>,
    state: Mutex<HeapState>,
    cv: Condvar,
    seq: AtomicU64,
    shutdown: AtomicBool,
    rng: Mutex<SmallRng>,
    endpoints: Mutex<HashMap<Rank, Arc<dyn Endpoint>>>,
}

/// Cheap-to-clone handle to the simulated interconnect. The scheduler
/// thread is owned by [`TransportOwner`]; handles stay valid (but post
/// cancelled messages) after shutdown.
#[derive(Clone)]
pub struct SimTransport {
    inner: Arc<Inner>,
}

/// Owns the scheduler thread; dropping it shuts the network down and joins
/// the thread.
///
/// Teardown ordering contract: `stop()` first requests shutdown, then
/// joins the scheduler thread. The scheduler's final act is to drain the
/// timing wheel and run every still-queued action with
/// [`Outcome::Cancelled`] — *outside* the heap lock, so a cancelled action
/// may itself post (its follow-up runs inline, also cancelled) without
/// deadlocking. By the time `stop()` returns, every action that was ever
/// posted has run exactly once and the thread is gone; owners must
/// therefore be dropped *before* the state those actions reference.
pub struct TransportOwner {
    t: SimTransport,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl SimTransport {
    /// Start the transport and its scheduler thread.
    pub fn start(model: LatencyModel, fault: Arc<FaultPlane>, seed: u64) -> TransportOwner {
        let inner = Arc::new(Inner {
            model,
            fault,
            metrics: Arc::new(Metrics::default()),
            state: Mutex::new(HeapState::default()),
            cv: Condvar::new(),
            seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            rng: Mutex::new(SmallRng::seed_from_u64(seed)),
            endpoints: Mutex::new(HashMap::new()),
        });
        let t = SimTransport { inner };
        let t2 = t.clone();
        let handle = std::thread::Builder::new()
            .name("sim-network".into())
            .spawn(move || t2.run())
            .expect("spawn network thread");
        TransportOwner { t, handle: Some(handle) }
    }

    /// The latency model in effect.
    pub fn model(&self) -> &LatencyModel {
        &self.inner.model
    }

    /// The fault plane the transport consults.
    pub fn fault(&self) -> &Arc<FaultPlane> {
        &self.inner.fault
    }

    /// Transport counters.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.inner.metrics
    }

    /// The endpoint bound to `rank`, if any.
    fn endpoint(&self, rank: Rank) -> Option<Arc<dyn Endpoint>> {
        self.inner.endpoints.lock().get(&rank).cloned()
    }

    /// Post a message. Returns immediately; the action runs on the network
    /// thread when the message is due. Posting after shutdown runs the
    /// action inline with [`Outcome::Cancelled`].
    pub fn post(&self, env: Envelope) {
        if self.inner.shutdown.load(Ordering::Acquire) {
            (env.action)(self, Outcome::Cancelled);
            return;
        }
        // Passive: `post` also runs on the network thread (nested response
        // posts), which must never unwind with `RankKilled`.
        self.inner.fault.site_passive(env.src, "transport.post");
        self.inner.metrics.msg_posted.fetch_add(1, Ordering::Relaxed);
        self.inner.metrics.bytes_posted.fetch_add(env.bytes as u64, Ordering::Relaxed);
        let u: f64 = self.inner.rng.lock().gen();
        let lat = self.inner.model.latency_jittered(env.bytes, u);
        self.post_after(env, lat)
    }

    /// Post with an explicit one-way delay instead of the model's latency
    /// (used for round trips and break-detection follow-ups).
    pub fn post_after(&self, env: Envelope, delay: Duration) {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        let mut due = now + delay;
        let mut st = self.inner.state.lock();
        let key = (env.src, env.queue, env.dst);
        if let Some(prev) = st.stream_due.get(&key) {
            if due <= *prev {
                due = *prev + Duration::from_nanos(1);
            }
        }
        st.stream_due.insert(key, due);
        st.heap.push(Scheduled { due, seq, env });
        drop(st);
        self.inner.cv.notify_one();
    }

    fn run(&self) {
        loop {
            let next = {
                let mut st = self.inner.state.lock();
                loop {
                    if self.inner.shutdown.load(Ordering::Acquire) {
                        // Drain: cancel everything still queued.
                        let rest: Vec<Scheduled> = st.heap.drain().collect();
                        drop(st);
                        for s in rest {
                            (s.env.action)(self, Outcome::Cancelled);
                        }
                        return;
                    }
                    let now = Instant::now();
                    match st.heap.peek() {
                        Some(s) if s.due <= now => break st.heap.pop().unwrap(),
                        Some(s) => {
                            let due = s.due;
                            self.inner.cv.wait_until(&mut st, due);
                        }
                        None => {
                            self.inner.cv.wait_for(&mut st, Duration::from_millis(5));
                        }
                    }
                }
            };
            self.deliver(next.env);
        }
    }

    fn deliver(&self, env: Envelope) {
        let fault = &self.inner.fault;
        if !fault.is_alive(env.src) {
            // Initiator died in flight: nobody is left to observe the
            // completion; drop it. (Remote memory effects of *earlier*
            // messages have already happened, as with a real NIC.)
            self.inner.metrics.msg_dropped_dead_src.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if fault.is_alive(env.dst) && fault.link_ok(env.src, env.dst) {
            // Self-deliveries are internal follow-ups (break reports); they
            // don't count as network deliveries.
            if env.src != env.dst {
                self.inner.metrics.msg_delivered.fetch_add(1, Ordering::Relaxed);
            }
            (env.action)(self, Outcome::Delivered);
        } else {
            // Report the break after the detection delay; the report
            // travels back to the source on the same queue.
            self.inner.metrics.msg_broken.fetch_add(1, Ordering::Relaxed);
            let delay = self.inner.model.break_detect;
            let Envelope { src, queue, action, .. } = env;
            self.post_after(
                Envelope {
                    src,
                    dst: src,
                    queue,
                    bytes: 0,
                    action: Box::new(move |t, out| {
                        let out = if out == Outcome::Cancelled { out } else { Outcome::Broken };
                        action(t, out);
                    }),
                },
                delay,
            );
        }
    }

    /// Request shutdown (queued actions cancel). Prefer dropping the
    /// [`TransportOwner`], which also joins the scheduler thread.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.cv.notify_all();
    }
}

impl Transport for SimTransport {
    fn bind(&self, rank: Rank, endpoint: Arc<dyn Endpoint>) {
        self.inner.endpoints.lock().insert(rank, endpoint);
    }

    fn send(
        &self,
        src: Rank,
        dst: Rank,
        queue: QueueId,
        cost: usize,
        msg: Vec<u8>,
        done: Completion,
    ) {
        self.post(Envelope {
            src,
            dst,
            queue,
            bytes: cost,
            action: Box::new(move |t, out| {
                if out != Outcome::Delivered {
                    done(out, Vec::new());
                    return;
                }
                let reply = match t.endpoint(dst) {
                    Some(ep) => ep.handle(src, queue, msg),
                    None => Vec::new(),
                };
                done(Outcome::Delivered, reply);
            }),
        });
    }

    fn call(
        &self,
        src: Rank,
        dst: Rank,
        queue: QueueId,
        cost: usize,
        msg: Vec<u8>,
        done: Completion,
    ) {
        self.post(Envelope {
            src,
            dst,
            queue,
            bytes: cost,
            action: Box::new(move |t, out| {
                if out != Outcome::Delivered {
                    done(out, Vec::new());
                    return;
                }
                let reply = match t.endpoint(dst) {
                    Some(ep) => ep.handle(src, queue, msg),
                    None => Vec::new(),
                };
                // The reply is a data transfer of its own: charged its
                // length, delivered (or broken) on the same stream back.
                t.post(Envelope {
                    src: dst,
                    dst: src,
                    queue,
                    bytes: reply.len(),
                    action: Box::new(move |_t, out2| {
                        if out2 == Outcome::Delivered {
                            done(Outcome::Delivered, reply);
                        } else {
                            done(out2, Vec::new());
                        }
                    }),
                });
            }),
        });
    }

    fn fault(&self) -> &Arc<FaultPlane> {
        SimTransport::fault(self)
    }

    fn metrics(&self) -> &Arc<Metrics> {
        SimTransport::metrics(self)
    }

    fn model(&self) -> &LatencyModel {
        SimTransport::model(self)
    }

    fn shutdown(&self) {
        SimTransport::shutdown(self);
    }
}

impl TransportOwner {
    /// A shareable handle to the network.
    pub fn handle(&self) -> SimTransport {
        self.t.clone()
    }

    /// Shut down and join the scheduler thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.t.shutdown();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TransportOwner {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use std::sync::mpsc;

    fn setup(n: u32) -> (TransportOwner, Arc<FaultPlane>) {
        let fault = FaultPlane::new(Topology::one_per_node(n));
        let t = SimTransport::start(LatencyModel::deterministic_fast(), Arc::clone(&fault), 42);
        (t, fault)
    }

    fn send_and_wait(t: &SimTransport, src: Rank, dst: Rank, queue: QueueId) -> Outcome {
        let (tx, rx) = mpsc::channel();
        t.post(Envelope {
            src,
            dst,
            queue,
            bytes: 8,
            action: Box::new(move |_, out| {
                let _ = tx.send(out);
            }),
        });
        rx.recv_timeout(Duration::from_secs(5)).expect("delivery")
    }

    #[test]
    fn delivers_to_live_rank() {
        let (o, _f) = setup(2);
        assert_eq!(send_and_wait(&o.handle(), 0, 1, 0), Outcome::Delivered);
    }

    #[test]
    fn breaks_to_dead_rank() {
        let (o, f) = setup(2);
        f.kill_rank(1);
        assert_eq!(send_and_wait(&o.handle(), 0, 1, 0), Outcome::Broken);
    }

    #[test]
    fn breaks_on_broken_link_even_if_alive() {
        let (o, f) = setup(2);
        f.break_link_directed(0, 1);
        assert_eq!(send_and_wait(&o.handle(), 0, 1, 0), Outcome::Broken);
        // Reverse direction still fine.
        assert_eq!(send_and_wait(&o.handle(), 1, 0, 0), Outcome::Delivered);
    }

    #[test]
    fn drops_when_source_is_dead() {
        let (o, f) = setup(2);
        f.kill_rank(0);
        let t = o.handle();
        let (tx, rx) = mpsc::channel::<Outcome>();
        t.post(Envelope {
            src: 0,
            dst: 1,
            queue: 0,
            bytes: 0,
            action: Box::new(move |_, out| {
                let _ = tx.send(out);
            }),
        });
        assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
        assert_eq!(t.metrics().msg_dropped_dead_src.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn per_stream_fifo_order() {
        let (o, _f) = setup(2);
        let t = o.handle();
        let (tx, rx) = mpsc::channel();
        // Large first message, tiny second: without the stream watermark the
        // second would be due earlier.
        let model = LatencyModel {
            base: Duration::from_micros(5),
            per_byte_ns: 10.0,
            ..LatencyModel::deterministic_fast()
        };
        let _ = model; // (model shown for intent; the stream key does the work)
        for (i, bytes) in [(0u32, 1_000_000usize), (1, 0)] {
            let tx = tx.clone();
            t.post(Envelope {
                src: 0,
                dst: 1,
                queue: 3,
                bytes,
                action: Box::new(move |_, _| {
                    let _ = tx.send(i);
                }),
            });
        }
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 0);
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 1);
    }

    #[test]
    fn action_can_post_followup() {
        let (o, _f) = setup(3);
        let (tx, rx) = mpsc::channel();
        o.handle().post(Envelope {
            src: 0,
            dst: 1,
            queue: 0,
            bytes: 0,
            action: Box::new(move |tr, out| {
                assert_eq!(out, Outcome::Delivered);
                // pong back
                tr.post(Envelope {
                    src: 1,
                    dst: 0,
                    queue: 0,
                    bytes: 0,
                    action: Box::new(move |_, out2| {
                        let _ = tx.send(out2);
                    }),
                });
            }),
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), Outcome::Delivered);
    }

    #[test]
    fn shutdown_cancels_pending() {
        let (o, _f) = setup(2);
        let (tx, rx) = mpsc::channel();
        o.handle().post_after(
            Envelope {
                src: 0,
                dst: 1,
                queue: 0,
                bytes: 0,
                action: Box::new(move |_, out| {
                    let _ = tx.send(out);
                }),
            },
            Duration::from_secs(3600),
        );
        o.shutdown();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), Outcome::Cancelled);
    }

    #[test]
    fn latency_is_respected() {
        let fault = FaultPlane::new(Topology::one_per_node(2));
        let model = LatencyModel {
            base: Duration::from_millis(5),
            per_byte_ns: 0.0,
            jitter: 0.0,
            break_detect: Duration::from_micros(50),
        };
        let o = SimTransport::start(model, fault, 1);
        let start = Instant::now();
        assert_eq!(send_and_wait(&o.handle(), 0, 1, 0), Outcome::Delivered);
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn metrics_count_messages() {
        let (o, f) = setup(2);
        let t = o.handle();
        assert_eq!(send_and_wait(&t, 0, 1, 0), Outcome::Delivered);
        f.kill_rank(1);
        assert_eq!(send_and_wait(&t, 0, 1, 0), Outcome::Broken);
        let m = t.metrics();
        assert!(m.msg_posted.load(Ordering::Relaxed) >= 2);
        assert_eq!(m.msg_delivered.load(Ordering::Relaxed), 1);
        assert_eq!(m.msg_broken.load(Ordering::Relaxed), 1);
    }

    // ---- Transport-trait surface --------------------------------------

    /// Echo endpoint: replies with `[src as u8, queue as u8]` + payload.
    struct Echo;
    impl Endpoint for Echo {
        fn handle(&self, src: Rank, queue: QueueId, msg: Vec<u8>) -> Vec<u8> {
            let mut out = vec![src as u8, queue as u8];
            out.extend_from_slice(&msg);
            out
        }
    }

    #[test]
    fn trait_send_runs_endpoint_and_returns_reply() {
        let (o, _f) = setup(2);
        let t: Arc<dyn Transport> = Arc::new(o.handle());
        t.bind(1, Arc::new(Echo));
        let (tx, rx) = mpsc::channel();
        t.send(
            0,
            1,
            3,
            16,
            vec![0xAA],
            Box::new(move |out, reply| {
                let _ = tx.send((out, reply));
            }),
        );
        let (out, reply) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(out, Outcome::Delivered);
        assert_eq!(reply, vec![0, 3, 0xAA]);
    }

    #[test]
    fn trait_call_round_trips_and_breaks_to_dead_rank() {
        let (o, f) = setup(2);
        let t: Arc<dyn Transport> = Arc::new(o.handle());
        t.bind(1, Arc::new(Echo));
        let (tx, rx) = mpsc::channel();
        let tx2 = tx.clone();
        t.call(
            0,
            1,
            0,
            8,
            vec![1, 2],
            Box::new(move |out, reply| {
                let _ = tx2.send((out, reply));
            }),
        );
        let (out, reply) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(out, Outcome::Delivered);
        assert_eq!(reply, vec![0, 0, 1, 2]);

        f.kill_rank(1);
        t.call(
            0,
            1,
            0,
            8,
            vec![9],
            Box::new(move |out, reply| {
                let _ = tx.send((out, reply));
            }),
        );
        let (out, reply) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(out, Outcome::Broken);
        assert!(reply.is_empty());
    }

    /// Satellite regression: dropping the owner while the wheel is full of
    /// far-future deliveries must (a) not deadlock, (b) run every action
    /// exactly once with `Cancelled`, and (c) survive cancelled actions
    /// that post follow-ups from inside the drain (the follow-up runs
    /// inline, also cancelled).
    #[test]
    fn teardown_with_inflight_deliveries_runs_every_action_once() {
        use std::sync::atomic::AtomicUsize;
        let (o, _f) = setup(4);
        let t = o.handle();
        let ran = Arc::new(AtomicUsize::new(0));
        const N: usize = 64;
        for i in 0..N {
            let ran = Arc::clone(&ran);
            let t2 = t.clone();
            t.post_after(
                Envelope {
                    src: (i % 4) as Rank,
                    dst: ((i + 1) % 4) as Rank,
                    queue: (i % 3) as QueueId,
                    bytes: 8,
                    action: Box::new(move |_, out| {
                        assert_eq!(out, Outcome::Cancelled);
                        ran.fetch_add(1, Ordering::SeqCst);
                        let ran2 = Arc::clone(&ran);
                        // A follow-up posted during cancellation must still
                        // complete (inline, cancelled) instead of leaking.
                        t2.post(Envelope {
                            src: 0,
                            dst: 1,
                            queue: 0,
                            bytes: 0,
                            action: Box::new(move |_, out2| {
                                assert_eq!(out2, Outcome::Cancelled);
                                ran2.fetch_add(1, Ordering::SeqCst);
                            }),
                        });
                    }),
                },
                Duration::from_secs(3600),
            );
        }
        drop(o); // shutdown + join; must not hang
        assert_eq!(ran.load(Ordering::SeqCst), 2 * N);
        // The handle stays usable post-shutdown: posts cancel inline.
        let ran3 = Arc::clone(&ran);
        t.post(Envelope {
            src: 0,
            dst: 1,
            queue: 0,
            bytes: 0,
            action: Box::new(move |_, out| {
                assert_eq!(out, Outcome::Cancelled);
                ran3.fetch_add(1, Ordering::SeqCst);
            }),
        });
        assert_eq!(ran.load(Ordering::SeqCst), 2 * N + 1);
    }
}
