//! Real-process backend: length-delimited binary RPC over TCP.
//!
//! Where [`crate::transport::SimTransport`] simulates a cluster inside one
//! process, [`TcpTransport`] *is* the wire of a real one: every rank is an
//! OS process, every message is a framed RPC over a loopback TCP
//! connection, and fail-stop death is genuine — a `SIGKILL`ed rank's
//! sockets reset and its peers observe [`Outcome::Broken`], exactly the
//! failure signal the paper's timeout-based health checking is built on.
//!
//! ## Frame format
//!
//! ```text
//! [u32 len] [u8 kind] [u64 call_id] [u32 src] [u32 dst] [u16 queue] [payload…]
//! ```
//!
//! `len` counts everything after itself, little-endian throughout.
//! `kind` is request (0) or response (1); every request gets exactly one
//! response carrying the endpoint's reply bytes (GASPI one-sided ops all
//! have a completion to report, so [`Transport::send`] and
//! [`Transport::call`] are the same wire exchange here — the distinction
//! only matters for the simulator's latency accounting).
//!
//! ## Connections and threads
//!
//! Connections are directional: rank A's sends to rank B travel on A's
//! outgoing connection to B's listener, established lazily at first use.
//! Per connection there is one reader thread (responses back to the
//! caller-side, requests on the server-side); incoming requests are
//! dispatched to the bound [`Endpoint`] under one process-wide dispatch
//! lock, which serializes remote accesses the way the simulator's single
//! scheduler thread does (global atomics stay atomic). TCP gives per-
//! connection FIFO, which is strictly stronger than the per-`(src, queue,
//! dst)` order the seam requires.
//!
//! ## Failure mapping
//!
//! * connect refused / reset / EOF → every pending and future completion
//!   on that peer runs with [`Outcome::Broken`] (peers never resurrect:
//!   a rank that died stays dead, per fail-stop).
//! * locally-known-dead destination (fault plane) → immediate `Broken`,
//!   matching the simulator's fast path.
//! * [`Transport::shutdown`] → pending completions run with
//!   [`Outcome::Cancelled`].
//!
//! ## Link faults
//!
//! Unlike rank death, a broken link is *healable*, so link faults never
//! set a peer's permanent `broken` flag. Enforcement is per-direction and
//! consulted on every frame:
//!
//! * **Send side** — [`Transport::send`]/[`Transport::call`] check
//!   [`FaultPlane::link_ok`] before touching the socket; a broken link
//!   completes immediately with [`Outcome::Broken`], and a registered
//!   [`FaultPlane::on_link`] hook severs the live outgoing connection the
//!   moment the break lands, draining in-flight completions as `Broken`.
//! * **Receive side** — the server checks `link_ok(src, dst)` per
//!   request and answers a refused frame with a `KIND_RESP_BROKEN`
//!   response instead of dispatching it, so an *asymmetric* partition
//!   (only one side's fault plane knows) still breaks the sender's calls
//!   without killing the connection.
//! * **Heal** — `HealLink` clears the table; the next send lazily
//!   reconnects. Severed connections carry a generation counter so a
//!   stale reader observing the sever's EOF cannot misclassify it as
//!   peer death after the link has healed.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::fault::FaultPlane;
use crate::metrics::Metrics;
use crate::time::LatencyModel;
use crate::topology::Rank;
use crate::transport::{Completion, Endpoint, Outcome, QueueId, Transport};

const KIND_REQ: u8 = 0;
const KIND_RESP: u8 = 1;
/// Response kind for a request refused by the receive-side link check:
/// the receiver's fault plane says the `src → dst` link is down, so the
/// call completes as [`Outcome::Broken`] without dispatching. The
/// connection itself stays up — the link may heal.
const KIND_RESP_BROKEN: u8 = 2;
/// kind + call_id + src + dst + queue.
const HDR: usize = 1 + 8 + 4 + 4 + 2;

struct Frame {
    kind: u8,
    call_id: u64,
    src: Rank,
    dst: Rank,
    queue: QueueId,
    payload: Vec<u8>,
}

fn write_frame(w: &mut TcpStream, f: &Frame) -> io::Result<()> {
    let len = (HDR + f.payload.len()) as u32;
    let mut buf = Vec::with_capacity(4 + HDR + f.payload.len());
    buf.extend_from_slice(&len.to_le_bytes());
    buf.push(f.kind);
    buf.extend_from_slice(&f.call_id.to_le_bytes());
    buf.extend_from_slice(&f.src.to_le_bytes());
    buf.extend_from_slice(&f.dst.to_le_bytes());
    buf.extend_from_slice(&f.queue.to_le_bytes());
    buf.extend_from_slice(&f.payload);
    w.write_all(&buf)
}

fn read_frame(r: &mut TcpStream) -> io::Result<Frame> {
    let mut len4 = [0u8; 4];
    r.read_exact(&mut len4)?;
    let len = u32::from_le_bytes(len4) as usize;
    if !(HDR..=1 << 30).contains(&len) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad frame length"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(Frame {
        kind: buf[0],
        call_id: u64::from_le_bytes(buf[1..9].try_into().unwrap()),
        src: u32::from_le_bytes(buf[9..13].try_into().unwrap()),
        dst: u32::from_le_bytes(buf[13..17].try_into().unwrap()),
        queue: u16::from_le_bytes(buf[17..19].try_into().unwrap()),
        payload: buf[HDR..].to_vec(),
    })
}

/// State of one outgoing (client) connection to a peer.
#[derive(Default)]
struct PeerConn {
    /// Write half; `None` once the connection (or the peer) is dead.
    stream: Option<TcpStream>,
    /// In-flight requests awaiting a response.
    pending: HashMap<u64, Completion>,
    /// Set once the peer is known dead; all further traffic breaks fast.
    broken: bool,
    /// Bumped every time the current stream is torn down. A reader thread
    /// holds the generation it was spawned for and goes quiet if the
    /// connection was already replaced or severed out from under it.
    generation: u64,
}

struct TcpInner {
    me: Rank,
    fault: Arc<FaultPlane>,
    metrics: Arc<Metrics>,
    model: LatencyModel,
    /// Rank → listener address, filled by [`TcpTransport::set_peers`].
    peers: Mutex<Vec<Option<SocketAddr>>>,
    conns: Mutex<HashMap<Rank, Arc<Mutex<PeerConn>>>>,
    endpoints: Mutex<HashMap<Rank, Arc<dyn Endpoint>>>,
    /// Serializes endpoint dispatch (the TCP analogue of the simulator's
    /// single scheduler thread) so remote atomics are atomic.
    dispatch: Mutex<()>,
    /// Accepted (incoming) streams, kept so shutdown can reset them and
    /// peers observe EOF instead of hanging on a silent half-open socket.
    server_conns: Mutex<Vec<TcpStream>>,
    next_call: AtomicU64,
    shutdown: AtomicBool,
    local_addr: SocketAddr,
}

impl TcpInner {
    fn dispatch(&self, f: &Frame) -> Vec<u8> {
        let ep = self.endpoints.lock().get(&f.dst).cloned();
        let _serialize = self.dispatch.lock();
        match ep {
            Some(ep) => ep.handle(f.src, f.queue, &f.payload),
            None => Vec::new(),
        }
    }

    /// Tear down the outgoing connection to `dst` and fail everything on
    /// it. `permanent` marks the peer dead (fail-stop: no resurrection);
    /// a link-fault sever leaves `broken` clear so a later heal can
    /// lazily reconnect.
    fn sever_peer(&self, dst: Rank, out: Outcome, permanent: bool) {
        let conn = self.conns.lock().get(&dst).cloned();
        if let Some(conn) = conn {
            let mut c = conn.lock();
            if permanent {
                c.broken = true;
            }
            if let Some(s) = c.stream.take() {
                let _ = s.shutdown(Shutdown::Both);
            }
            c.generation += 1;
            let pending: Vec<Completion> = c.pending.drain().map(|(_, d)| d).collect();
            drop(c);
            for done in pending {
                done(out, Vec::new());
            }
        }
    }

    /// Kill the outgoing connection to `dst` and fail everything on it.
    fn break_peer(&self, dst: Rank, out: Outcome) {
        self.sever_peer(dst, out, true);
    }
}

/// The real-process transport: one instance per rank process.
pub struct TcpTransport {
    inner: Arc<TcpInner>,
}

impl TcpTransport {
    /// Bind a loopback listener for `me` and start accepting. Peer
    /// addresses must be supplied via [`TcpTransport::set_peers`] before
    /// the first send (the supervisor's PORT/MAP handshake guarantees
    /// this).
    pub fn listen(
        me: Rank,
        num_ranks: u32,
        fault: Arc<FaultPlane>,
        model: LatencyModel,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let local_addr = listener.local_addr()?;
        let inner = Arc::new(TcpInner {
            me,
            fault,
            metrics: Arc::new(Metrics::default()),
            model,
            peers: Mutex::new(vec![None; num_ranks as usize]),
            conns: Mutex::new(HashMap::new()),
            endpoints: Mutex::new(HashMap::new()),
            dispatch: Mutex::new(()),
            server_conns: Mutex::new(Vec::new()),
            next_call: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            local_addr,
        });
        let inner2 = Arc::clone(&inner);
        std::thread::Builder::new()
            .name(format!("tcp-accept-{me}"))
            .spawn(move || accept_loop(listener, inner2))
            .expect("spawn tcp accept thread");
        // Enforce link breaks on live sockets: when the outgoing direction
        // from this rank breaks, sever the connection so in-flight sends
        // drain as Broken instead of waiting on responses the peer will
        // refuse anyway. Heals need no action — the next send reconnects.
        let inner3 = Arc::clone(&inner);
        inner.fault.on_link(move |src, dst, broken| {
            if broken && src == inner3.me && dst != inner3.me {
                inner3.sever_peer(dst, Outcome::Broken, false);
            }
        });
        Ok(Self { inner })
    }

    /// The local listener port (reported to the supervisor).
    pub fn port(&self) -> u16 {
        self.inner.local_addr.port()
    }

    /// Install the rank → port map (from the supervisor's MAP line).
    pub fn set_peers(&self, ports: &[u16]) {
        let mut peers = self.inner.peers.lock();
        assert_eq!(ports.len(), peers.len(), "peer map must cover every rank");
        for (i, &p) in ports.iter().enumerate() {
            peers[i] = Some(SocketAddr::from(([127, 0, 0, 1], p)));
        }
    }

    /// Outgoing connection to `dst`, established on first use. Returns
    /// `None` when the peer is (or just proved to be) unreachable.
    fn conn_to(&self, dst: Rank) -> Option<Arc<Mutex<PeerConn>>> {
        let conn = Arc::clone(self.inner.conns.lock().entry(dst).or_default());
        let mut c = conn.lock();
        if c.broken {
            return None;
        }
        if c.stream.is_none() {
            let addr = (*self.inner.peers.lock().get(dst as usize)?)?;
            match TcpStream::connect(addr) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    let reader = s.try_clone().ok()?;
                    c.stream = Some(s);
                    let generation = c.generation;
                    drop(c);
                    let inner = Arc::clone(&self.inner);
                    let conn2 = Arc::clone(&conn);
                    std::thread::Builder::new()
                        .name(format!("tcp-client-{}-{}", self.inner.me, dst))
                        .spawn(move || client_reader(reader, conn2, inner, dst, generation))
                        .expect("spawn tcp client reader");
                    return Some(conn);
                }
                Err(_) => {
                    c.broken = true;
                    return None;
                }
            }
        }
        drop(c);
        Some(conn)
    }

    /// One wire exchange: register the completion, write the request.
    fn roundtrip(
        &self,
        src: Rank,
        dst: Rank,
        queue: QueueId,
        cost: usize,
        msg: Vec<u8>,
        done: Completion,
    ) {
        let inner = &self.inner;
        if inner.shutdown.load(Ordering::Acquire) {
            done(Outcome::Cancelled, Vec::new());
            return;
        }
        // Same injection crossing and counters as the simulator's post().
        inner.fault.site_passive(src, "transport.post");
        inner.metrics.msg_posted.fetch_add(1, Ordering::Relaxed);
        inner.metrics.bytes_posted.fetch_add(cost as u64, Ordering::Relaxed);
        if !inner.fault.is_alive(dst) || !inner.fault.link_ok(src, dst) {
            done(Outcome::Broken, Vec::new());
            return;
        }
        if dst == inner.me {
            // Loopback fast path: dispatch inline (still under the
            // dispatch lock, via TcpInner::dispatch).
            let f = Frame { kind: KIND_REQ, call_id: 0, src, dst, queue, payload: msg };
            let reply = inner.dispatch(&f);
            done(Outcome::Delivered, reply);
            return;
        }
        let Some(conn) = self.conn_to(dst) else {
            done(Outcome::Broken, Vec::new());
            return;
        };
        let call_id = inner.next_call.fetch_add(1, Ordering::Relaxed);
        let mut c = conn.lock();
        if c.broken || c.stream.is_none() {
            drop(c);
            done(Outcome::Broken, Vec::new());
            return;
        }
        c.pending.insert(call_id, done);
        let f = Frame { kind: KIND_REQ, call_id, src, dst, queue, payload: msg };
        let res = write_frame(c.stream.as_mut().unwrap(), &f);
        drop(c);
        if res.is_err() {
            inner.break_peer(dst, Outcome::Broken);
        }
    }
}

/// Reads responses on an outgoing connection. EOF/reset breaks the peer
/// permanently — unless this rank's fault plane says the link to `dst` is
/// down, in which case the sever is healable, or the connection's
/// generation has already moved on (a racing sever tore this stream down;
/// its verdict stands).
fn client_reader(
    mut stream: TcpStream,
    conn: Arc<Mutex<PeerConn>>,
    inner: Arc<TcpInner>,
    dst: Rank,
    generation: u64,
) {
    loop {
        match read_frame(&mut stream) {
            Ok(f) if f.kind == KIND_RESP => {
                let done = conn.lock().pending.remove(&f.call_id);
                if let Some(done) = done {
                    done(Outcome::Delivered, f.payload);
                }
            }
            Ok(f) if f.kind == KIND_RESP_BROKEN => {
                // The receiver refused the frame: its fault plane has the
                // src → dst link down. Break the call, keep the socket.
                let done = conn.lock().pending.remove(&f.call_id);
                if let Some(done) = done {
                    done(Outcome::Broken, Vec::new());
                }
            }
            Ok(_) => { /* requests never arrive on outgoing connections */ }
            Err(_) => {
                if conn.lock().generation != generation {
                    return; // already severed by someone with fresher knowledge
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    inner.break_peer(dst, Outcome::Cancelled);
                } else if inner.fault.is_alive(dst) && !inner.fault.link_ok(inner.me, dst) {
                    inner.sever_peer(dst, Outcome::Broken, false);
                } else {
                    inner.break_peer(dst, Outcome::Broken);
                }
                return;
            }
        }
    }
}

/// Accepts incoming connections and spawns a server reader per peer.
fn accept_loop(listener: TcpListener, inner: Arc<TcpInner>) {
    for stream in listener.incoming() {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        if let Ok(c) = stream.try_clone() {
            inner.server_conns.lock().push(c);
        }
        let inner2 = Arc::clone(&inner);
        let name = format!("tcp-server-{}", inner.me);
        let _ = std::thread::Builder::new().name(name).spawn(move || server_reader(stream, inner2));
    }
}

/// Reads requests on an incoming connection, dispatches them to the bound
/// endpoint, and writes the response back on the same connection.
fn server_reader(mut stream: TcpStream, inner: Arc<TcpInner>) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    loop {
        match read_frame(&mut stream) {
            Ok(f) if f.kind == KIND_REQ => {
                // Receive-side link check: refuse the frame (don't
                // dispatch) when *this* rank's fault plane has the
                // src → dst link down. This is what makes asymmetric
                // partitions real — the sender's plane may not know.
                if !inner.fault.link_ok(f.src, f.dst) {
                    let resp = Frame {
                        kind: KIND_RESP_BROKEN,
                        call_id: f.call_id,
                        src: f.dst,
                        dst: f.src,
                        queue: f.queue,
                        payload: Vec::new(),
                    };
                    if write_frame(&mut writer, &resp).is_err() {
                        return;
                    }
                    continue;
                }
                inner.metrics.msg_delivered.fetch_add(1, Ordering::Relaxed);
                let reply = inner.dispatch(&f);
                let resp = Frame {
                    kind: KIND_RESP,
                    call_id: f.call_id,
                    src: f.dst,
                    dst: f.src,
                    queue: f.queue,
                    payload: reply,
                };
                if write_frame(&mut writer, &resp).is_err() {
                    return;
                }
            }
            Ok(_) => { /* responses never arrive on incoming connections */ }
            Err(_) => return,
        }
    }
}

impl Transport for TcpTransport {
    fn bind(&self, rank: Rank, endpoint: Arc<dyn Endpoint>) {
        self.inner.endpoints.lock().insert(rank, endpoint);
    }

    fn send(
        &self,
        src: Rank,
        dst: Rank,
        queue: QueueId,
        cost: usize,
        msg: Vec<u8>,
        done: Completion,
    ) {
        self.roundtrip(src, dst, queue, cost, msg, done);
    }

    fn call(
        &self,
        src: Rank,
        dst: Rank,
        queue: QueueId,
        cost: usize,
        msg: Vec<u8>,
        done: Completion,
    ) {
        // Every TCP exchange is already a round trip.
        self.roundtrip(src, dst, queue, cost, msg, done);
    }

    fn fault(&self) -> &Arc<FaultPlane> {
        &self.inner.fault
    }

    fn metrics(&self) -> &Arc<Metrics> {
        &self.inner.metrics
    }

    fn model(&self) -> &LatencyModel {
        &self.inner.model
    }

    fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
        // Wake the accept loop so it can observe the flag.
        let _ = TcpStream::connect(self.inner.local_addr);
        // Cancel everything in flight.
        let conns: Vec<_> = self.inner.conns.lock().keys().copied().collect();
        for dst in conns {
            self.inner.break_peer(dst, Outcome::Cancelled);
        }
        // Reset incoming connections so peers observe EOF.
        for s in self.inner.server_conns.lock().drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Echo endpoint mirroring the SimTransport trait tests.
    struct Echo;
    impl Endpoint for Echo {
        fn handle(&self, src: Rank, queue: QueueId, msg: &[u8]) -> Vec<u8> {
            let mut out = vec![src as u8, queue as u8];
            out.extend_from_slice(msg);
            out
        }
    }

    fn pair() -> (TcpTransport, TcpTransport) {
        let fault0 = FaultPlane::new(Topology::one_per_node(2));
        let fault1 = FaultPlane::new(Topology::one_per_node(2));
        let t0 = TcpTransport::listen(0, 2, fault0, LatencyModel::deterministic_fast()).unwrap();
        let t1 = TcpTransport::listen(1, 2, fault1, LatencyModel::deterministic_fast()).unwrap();
        let ports = [t0.port(), t1.port()];
        t0.set_peers(&ports);
        t1.set_peers(&ports);
        t0.bind(0, Arc::new(Echo));
        t1.bind(1, Arc::new(Echo));
        (t0, t1)
    }

    #[test]
    fn request_response_over_real_sockets() {
        let (t0, _t1) = pair();
        let (tx, rx) = mpsc::channel();
        t0.call(
            0,
            1,
            3,
            16,
            vec![0xAB, 0xCD],
            Box::new(move |out, reply| {
                let _ = tx.send((out, reply));
            }),
        );
        let (out, reply) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(out, Outcome::Delivered);
        assert_eq!(reply, vec![0, 3, 0xAB, 0xCD]);
        assert_eq!(t0.metrics().msg_posted.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn self_send_dispatches_inline() {
        let (t0, _t1) = pair();
        let (tx, rx) = mpsc::channel();
        t0.send(
            0,
            0,
            1,
            8,
            vec![7],
            Box::new(move |out, reply| {
                let _ = tx.send((out, reply));
            }),
        );
        let (out, reply) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(out, Outcome::Delivered);
        assert_eq!(reply, vec![0, 1, 7]);
    }

    #[test]
    fn dead_peer_breaks_pending_and_future_sends() {
        let (t0, t1) = pair();
        // Warm up the connection.
        let (tx, rx) = mpsc::channel();
        let tx0 = tx.clone();
        t0.send(
            0,
            1,
            0,
            0,
            vec![1],
            Box::new(move |o, _| {
                let _ = tx0.send(o);
            }),
        );
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), Outcome::Delivered);
        // Peer "dies": its transport shuts down and resets connections.
        t1.shutdown();
        drop(t1);
        // The next exchange observes Broken (possibly after the reader
        // notices the reset and breaks the peer for good).
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let tx0 = tx.clone();
            t0.send(
                0,
                1,
                0,
                0,
                vec![2],
                Box::new(move |o, _| {
                    let _ = tx0.send(o);
                }),
            );
            match rx.recv_timeout(Duration::from_secs(5)).unwrap() {
                Outcome::Broken => break,
                _ if std::time::Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10))
                }
                o => panic!("expected Broken, got {o:?}"),
            }
        }
        // Once broken, it stays broken (fail-stop: no resurrection).
        let (tx2, rx2) = mpsc::channel();
        t0.send(
            0,
            1,
            0,
            0,
            vec![3],
            Box::new(move |o, _| {
                let _ = tx2.send(o);
            }),
        );
        assert_eq!(rx2.recv_timeout(Duration::from_secs(5)).unwrap(), Outcome::Broken);
    }

    #[test]
    fn locally_known_dead_rank_breaks_fast() {
        let (t0, _t1) = pair();
        t0.fault().kill_rank(1);
        let (tx, rx) = mpsc::channel();
        t0.send(
            0,
            1,
            0,
            0,
            vec![],
            Box::new(move |o, _| {
                let _ = tx.send(o);
            }),
        );
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), Outcome::Broken);
    }

    fn send_once(t: &TcpTransport, src: Rank, dst: Rank, byte: u8) -> (Outcome, Vec<u8>) {
        let (tx, rx) = mpsc::channel();
        t.send(
            src,
            dst,
            0,
            0,
            vec![byte],
            Box::new(move |o, r| {
                let _ = tx.send((o, r));
            }),
        );
        rx.recv_timeout(Duration::from_secs(5)).unwrap()
    }

    /// Breaking a link mid-traffic severs the live connection (sends
    /// drain as `Broken`), and healing restores delivery on a fresh
    /// connection — no permanent peer death.
    #[test]
    fn break_link_severs_and_heal_restores() {
        let (t0, _t1) = pair();
        assert_eq!(send_once(&t0, 0, 1, 1).0, Outcome::Delivered);
        t0.fault().break_link(0, 1);
        assert_eq!(send_once(&t0, 0, 1, 2).0, Outcome::Broken);
        t0.fault().heal_link(0, 1);
        let (out, reply) = send_once(&t0, 0, 1, 3);
        assert_eq!(out, Outcome::Delivered);
        assert_eq!(reply, vec![0, 0, 3]);
    }

    /// An asymmetric partition: only the *receiver's* fault plane knows
    /// the link is down. The sender's frames reach the wire but are
    /// refused per-frame with `KIND_RESP_BROKEN`, so its calls break
    /// without the connection dying — and flow resumes after the heal.
    #[test]
    fn receive_side_refusal_enforces_asymmetric_partition() {
        let (t0, t1) = pair();
        assert_eq!(send_once(&t0, 0, 1, 1).0, Outcome::Delivered);
        // Break on rank 1's plane only; rank 0 still thinks all is well.
        t1.fault().break_link(0, 1);
        assert!(t0.fault().link_ok(0, 1), "sender's plane is oblivious");
        assert_eq!(send_once(&t0, 0, 1, 2).0, Outcome::Broken);
        t1.fault().heal_link(0, 1);
        let (out, reply) = send_once(&t0, 0, 1, 3);
        assert_eq!(out, Outcome::Delivered);
        assert_eq!(reply, vec![0, 0, 3]);
    }

    /// A link break drains in-flight calls as `Broken`: the request is on
    /// the wire awaiting its response when the sever lands.
    #[test]
    fn break_link_drains_inflight_as_broken() {
        let (t0, _t1) = pair();
        assert_eq!(send_once(&t0, 0, 1, 1).0, Outcome::Delivered);
        // Stall rank 1's dispatch so a call is parked in `pending`.
        let _block = t1_dispatch_stall(&_t1);
        let (tx, rx) = mpsc::channel();
        t0.call(
            0,
            1,
            0,
            0,
            vec![9],
            Box::new(move |o, _| {
                let _ = tx.send(o);
            }),
        );
        // Give the frame time to hit the wire, then break.
        std::thread::sleep(Duration::from_millis(50));
        t0.fault().break_link(0, 1);
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), Outcome::Broken);
    }

    /// Hold rank 1's dispatch lock so incoming requests park.
    fn t1_dispatch_stall(t1: &TcpTransport) -> parking_lot::MutexGuard<'_, ()> {
        t1.inner.dispatch.lock()
    }

    #[test]
    fn concurrent_calls_multiplex_on_one_connection() {
        let (t0, _t1) = pair();
        let (tx, rx) = mpsc::channel();
        const N: usize = 64;
        for i in 0..N {
            let tx = tx.clone();
            t0.call(
                0,
                1,
                (i % 5) as QueueId,
                8,
                vec![i as u8],
                Box::new(move |out, reply| {
                    let _ = tx.send((i, out, reply));
                }),
            );
        }
        for _ in 0..N {
            let (i, out, reply) = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(out, Outcome::Delivered);
            assert_eq!(reply, vec![0, (i % 5) as u8, i as u8]);
        }
    }
}
