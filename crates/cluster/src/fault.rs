//! The fault plane: fail-stop process/node failures and network faults.
//!
//! The paper verified its recovery mechanism by killing processes three
//! ways (§VI): `exit(-1)` inside the program, `kill -9` from outside, and
//! physically introducing a network failure. The fault plane reproduces all
//! three:
//!
//! * [`FaultPlane::kill_rank`] — external kill (`kill -9`): the rank's
//!   liveness flag is poisoned; its next communication-layer call panics
//!   with [`RankKilled`], unwound to the rank-thread boundary.
//! * A rank may also kill *itself* (the `exit(-1)` style) by calling
//!   [`FaultPlane::kill_rank`] on its own rank and then raising
//!   [`RankKilled::raise`].
//! * [`FaultPlane::break_link`] — a network fault: both processes stay
//!   alive but messages between them are reported broken. Used to exercise
//!   the paper's *false positive* discussion (§IV-A-a): the fault detector
//!   suspects a healthy process and enforces its death via
//!   `gaspi_proc_kill`.
//!
//! Node kills ([`FaultPlane::kill_node`]) take down every rank placed on
//! the node *and* fire the registered kill hooks, which drop node-local
//! state (segments, node-level checkpoints) — the reason the checkpoint
//! library must replicate to a *neighbor* node.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use crate::codec::{CodecError, Dec, Enc};
use crate::inject::{InjectOp, InjectState, Injection, InjectionPlan, SiteName, SiteRecord};
use crate::topology::{NodeId, Rank, Topology};

/// Panic payload raised by a killed rank's next communication call.
///
/// The GASPI runtime installs a panic hook that silences this payload (it
/// is a *simulated* failure, not a bug) and catches it at the top of the
/// rank thread, turning the thread's outcome into "killed".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankKilled {
    /// The rank that died.
    pub rank: Rank,
}

impl RankKilled {
    /// Unwind the current rank thread with this payload.
    pub fn raise(self) -> ! {
        std::panic::panic_any(self)
    }
}

/// What happened in a kill event, passed to registered hooks.
#[derive(Debug, Clone)]
pub struct KillEvent {
    /// Ranks that died in this event (one for a process kill, all ranks of
    /// the node for a node kill).
    pub ranks: Vec<Rank>,
    /// Set when the whole node died, in which case node-local state must be
    /// dropped.
    pub node: Option<NodeId>,
}

type KillHook = Box<dyn Fn(&KillEvent) + Send + Sync>;

/// Hook fired once per *directed* link transition: `(src, dst, broken)`.
/// A bidirectional [`FaultPlane::break_link`] fires it twice (once per
/// direction); `broken == false` means the direction was healed. The TCP
/// backend registers one to sever live sockets when a break involves the
/// local rank.
type LinkHook = Box<dyn Fn(Rank, Rank, bool) + Send + Sync>;

/// Shared liveness/link-state of the simulated cluster.
pub struct FaultPlane {
    topo: Topology,
    alive: Vec<AtomicBool>,
    node_alive: Vec<AtomicBool>,
    /// Directed broken links `(src, dst)`.
    broken_links: RwLock<HashSet<(Rank, Rank)>>,
    hooks: Mutex<Vec<KillHook>>,
    link_hooks: Mutex<Vec<LinkHook>>,
    /// Bumped on every kill/link event; cheap freshness check for cached
    /// liveness views.
    epoch: AtomicU64,
    /// Fast-path gate for injection sites: sites are one relaxed load
    /// until a recording or an armed plan turns this on.
    inject_on: AtomicBool,
    /// Step-indexed injection state (counters, log, armed plans).
    inject: Mutex<InjectState>,
    /// Process-backend hook: when set to a rank (sentinel `u64::MAX` =
    /// unset), killing that rank terminates *this OS process* with exit
    /// code [`KILLED_EXIT_CODE`]. A child process hosting exactly one rank
    /// sets this so every cooperative kill path — `exit(-1)`-style
    /// self-kills, step-indexed injections, a received `gaspi_proc_kill` —
    /// becomes genuine fail-stop death instead of flag poisoning.
    exit_on_kill: AtomicU64,
}

/// Exit code of a rank process that died to a kill (as opposed to an
/// error or a clean finish); the supervisor classifies on it.
pub const KILLED_EXIT_CODE: i32 = 113;

impl FaultPlane {
    /// A fault plane where every rank and node starts healthy.
    pub fn new(topo: Topology) -> Arc<Self> {
        let alive = (0..topo.num_ranks()).map(|_| AtomicBool::new(true)).collect();
        let node_alive = (0..topo.num_nodes()).map(|_| AtomicBool::new(true)).collect();
        Arc::new(Self {
            topo,
            alive,
            node_alive,
            broken_links: RwLock::new(HashSet::new()),
            hooks: Mutex::new(Vec::new()),
            link_hooks: Mutex::new(Vec::new()),
            epoch: AtomicU64::new(0),
            inject_on: AtomicBool::new(false),
            inject: Mutex::new(InjectState::default()),
            exit_on_kill: AtomicU64::new(u64::MAX),
        })
    }

    /// Arm process-exit-on-kill for `rank` (see the field docs). Used by
    /// the process backend's child entry; never set in-memory.
    pub fn exit_process_on_kill(&self, rank: Rank) {
        self.exit_on_kill.store(u64::from(rank), Ordering::Release);
    }

    fn maybe_exit_process(&self, rank: Rank) {
        if self.exit_on_kill.load(Ordering::Acquire) == u64::from(rank) {
            std::process::exit(KILLED_EXIT_CODE);
        }
    }

    /// The topology this plane covers.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Liveness of a rank.
    pub fn is_alive(&self, rank: Rank) -> bool {
        self.alive[rank as usize].load(Ordering::Acquire)
    }

    /// Liveness of a node.
    pub fn node_is_alive(&self, node: NodeId) -> bool {
        self.node_alive[node.0 as usize].load(Ordering::Acquire)
    }

    /// Number of ranks still alive.
    pub fn alive_count(&self) -> u32 {
        self.alive.iter().filter(|a| a.load(Ordering::Acquire)).count() as u32
    }

    /// Panic with [`RankKilled`] if `rank` has been killed. Communication
    /// entry points call this so a killed rank stops at its next call —
    /// fail-stop semantics without force-killing OS threads.
    pub fn assert_alive(&self, rank: Rank) {
        if !self.is_alive(rank) {
            RankKilled { rank }.raise();
        }
    }

    /// Current fault epoch; bumped by every kill or link change.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Register a hook to run on every kill event (e.g. drop node storage,
    /// wake blocked waiters). Hooks run on the killer's thread, outside the
    /// plane's locks.
    pub fn on_kill(&self, hook: impl Fn(&KillEvent) + Send + Sync + 'static) {
        self.hooks.lock().push(Box::new(hook));
    }

    fn fire(&self, ev: KillEvent) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
        let hooks = self.hooks.lock();
        for h in hooks.iter() {
            h(&ev);
        }
    }

    /// Register a hook to run on every directed link transition (break or
    /// heal). Hooks run on the breaking thread, outside the link table's
    /// lock — the table is already updated when they fire, so a hook that
    /// re-reads [`FaultPlane::link_ok`] sees the new state.
    pub fn on_link(&self, hook: impl Fn(Rank, Rank, bool) + Send + Sync + 'static) {
        self.link_hooks.lock().push(Box::new(hook));
    }

    fn fire_link(&self, pairs: &[(Rank, Rank)], broken: bool) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
        let hooks = self.link_hooks.lock();
        for &(s, d) in pairs {
            for h in hooks.iter() {
                h(s, d, broken);
            }
        }
    }

    /// Kill a single rank (fail-stop). Returns `true` if this call killed
    /// it, `false` if it was already dead. Idempotent, as `gaspi_proc_kill`
    /// must be.
    pub fn kill_rank(&self, rank: Rank) -> bool {
        self.maybe_exit_process(rank);
        let first = self.alive[rank as usize].swap(false, Ordering::AcqRel);
        if first {
            self.fire(KillEvent { ranks: vec![rank], node: None });
        }
        first
    }

    /// Kill a whole node: all its ranks die and node-local state is
    /// dropped by the hooks. Returns the ranks that died with this call.
    pub fn kill_node(&self, node: NodeId) -> Vec<Rank> {
        for r in self.topo.ranks_on(node) {
            self.maybe_exit_process(r);
        }
        let was_alive = self.node_alive[node.0 as usize].swap(false, Ordering::AcqRel);
        let mut died = Vec::new();
        for r in self.topo.ranks_on(node) {
            if self.alive[r as usize].swap(false, Ordering::AcqRel) {
                died.push(r);
            }
        }
        if was_alive || !died.is_empty() {
            self.fire(KillEvent { ranks: died.clone(), node: Some(node) });
        }
        died
    }

    /// Break the directed link `src → dst` (messages that way are reported
    /// broken; the reverse direction is unaffected).
    pub fn break_link_directed(&self, src: Rank, dst: Rank) {
        self.broken_links.write().insert((src, dst));
        self.fire_link(&[(src, dst)], true);
    }

    /// Break both directions between `a` and `b`.
    pub fn break_link(&self, a: Rank, b: Rank) {
        {
            let mut l = self.broken_links.write();
            l.insert((a, b));
            l.insert((b, a));
        }
        self.fire_link(&[(a, b), (b, a)], true);
    }

    /// Restore both directions between `a` and `b`.
    pub fn heal_link(&self, a: Rank, b: Rank) {
        {
            let mut l = self.broken_links.write();
            l.remove(&(a, b));
            l.remove(&(b, a));
        }
        self.fire_link(&[(a, b), (b, a)], false);
    }

    /// Whether messages can flow `src → dst` right now (both endpoints
    /// alive, link intact).
    pub fn link_ok(&self, src: Rank, dst: Rank) -> bool {
        self.is_alive(src) && self.is_alive(dst) && !self.broken_links.read().contains(&(src, dst))
    }

    // ---- Step-indexed injection sites (see `crate::inject`) ------------

    /// Cross the named injection site on behalf of `rank`, **from the
    /// rank's own thread**: counts the occurrence, logs it while
    /// recording, and applies a matching armed [`Injection`]. A matching
    /// [`InjectOp::Kill`]/[`InjectOp::KillNode`] poisons the liveness
    /// flag (idempotently — a rank already dead by wall-clock schedule is
    /// not killed twice) and then unwinds the calling thread with
    /// [`RankKilled`], like [`FaultPlane::assert_alive`] after an
    /// external kill.
    ///
    /// Free when injection is disabled: one relaxed atomic load.
    pub fn site(&self, rank: Rank, site: SiteName) {
        if let Some(op) = self.site_hit(rank, site) {
            self.apply_site_op(rank, &op, true);
        }
    }

    /// [`FaultPlane::site`] for crossings performed by helper threads
    /// (the checkpoint library thread, the network scheduler): never
    /// unwinds the calling thread. A kill match only poisons the rank's
    /// liveness flag; the victim observes it at its next communication
    /// call — external `kill -9` semantics.
    pub fn site_passive(&self, rank: Rank, site: SiteName) {
        if let Some(op) = self.site_hit(rank, site) {
            self.apply_site_op(rank, &op, false);
        }
    }

    fn site_hit(&self, rank: Rank, site: SiteName) -> Option<InjectOp> {
        if !self.inject_on.load(Ordering::Relaxed) {
            return None;
        }
        self.inject.lock().cross(rank, site)
    }

    fn apply_site_op(&self, rank: Rank, op: &InjectOp, may_raise: bool) {
        match *op {
            InjectOp::Kill => {
                self.kill_rank(rank);
                if may_raise {
                    RankKilled { rank }.raise();
                }
            }
            InjectOp::KillNode => {
                self.kill_node(self.topo.node_of(rank));
                if may_raise {
                    RankKilled { rank }.raise();
                }
            }
            InjectOp::BreakLink { peer } => self.break_link(rank, peer),
            InjectOp::HealLink { peer } => self.heal_link(rank, peer),
            InjectOp::Delay { dur } => std::thread::sleep(dur),
        }
    }

    /// Arm a set of step-indexed injections (cumulative across calls).
    pub fn arm_injections(&self, plan: InjectionPlan) {
        if plan.is_empty() {
            return;
        }
        self.inject.lock().arm(plan);
        self.inject_on.store(true, Ordering::Release);
    }

    /// Start logging site crossings, keeping at most `cap_per_site`
    /// occurrences per `(site, rank)` in the log (counters are unbounded;
    /// only the log is capped). The log enumerates the kill points a
    /// sweep can replay.
    pub fn record_sites(&self, cap_per_site: u64) {
        self.inject.lock().start_recording(cap_per_site);
        self.inject_on.store(true, Ordering::Release);
    }

    /// The recorded site crossings, in crossing order.
    pub fn site_log(&self) -> Vec<SiteRecord> {
        self.inject.lock().log()
    }

    /// Armed injections that have fired so far, in firing order.
    pub fn injections_fired(&self) -> Vec<Injection> {
        self.inject.lock().fired()
    }

    /// Total crossings of `(site, rank)` so far.
    pub fn site_count(&self, site: &str, rank: Rank) -> u64 {
        self.inject.lock().count(site, rank)
    }
}

/// One planned fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Kill one rank.
    KillRank(Rank),
    /// Kill a node and every rank on it.
    KillNode(NodeId),
    /// Break the (bidirectional) link between two ranks.
    BreakLink(Rank, Rank),
    /// Heal the (bidirectional) link between two ranks.
    HealLink(Rank, Rank),
}

impl FaultAction {
    fn apply(&self, plane: &FaultPlane) {
        match *self {
            FaultAction::KillRank(r) => {
                plane.kill_rank(r);
            }
            FaultAction::KillNode(n) => {
                plane.kill_node(n);
            }
            FaultAction::BreakLink(a, b) => plane.break_link(a, b),
            FaultAction::HealLink(a, b) => plane.heal_link(a, b),
        }
    }

    /// Append the wire form (tag byte + operands) to `e`.
    pub fn encode(&self, e: &mut Enc) {
        match *self {
            FaultAction::KillRank(r) => {
                e.u8(0).u32(r);
            }
            FaultAction::KillNode(n) => {
                e.u8(1).u32(n.0);
            }
            FaultAction::BreakLink(a, b) => {
                e.u8(2).u32(a).u32(b);
            }
            FaultAction::HealLink(a, b) => {
                e.u8(3).u32(a).u32(b);
            }
        }
    }

    /// Inverse of [`FaultAction::encode`].
    pub fn decode(d: &mut Dec) -> Result<Self, CodecError> {
        Ok(match d.u8()? {
            0 => FaultAction::KillRank(d.u32()?),
            1 => FaultAction::KillNode(NodeId(d.u32()?)),
            2 => FaultAction::BreakLink(d.u32()?, d.u32()?),
            3 => FaultAction::HealLink(d.u32()?, d.u32()?),
            t => return Err(CodecError::BadTag(t)),
        })
    }
}

/// A deterministic failure plan: iteration-triggered kills (the paper's
/// `exit(-1)` at a fixed iteration, for reproducible redo-work time) and
/// wall-clock-triggered actions (the paper's random `kill -9` during the
/// run, for Table I).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    at_iteration: Vec<(Rank, u64)>,
    timed: Vec<(Duration, FaultAction)>,
    injections: Vec<Injection>,
}

impl FaultSchedule {
    /// An empty schedule (failure-free run).
    pub fn none() -> Self {
        Self::default()
    }

    /// Kill `rank` when *it* reaches iteration `iter` (the application
    /// driver polls [`FaultSchedule::kill_at_iteration`]).
    pub fn kill_rank_at_iteration(mut self, rank: Rank, iter: u64) -> Self {
        self.at_iteration.push((rank, iter));
        self
    }

    /// Apply `action` `after` the schedule timer starts.
    pub fn timed(mut self, after: Duration, action: FaultAction) -> Self {
        self.timed.push((after, action));
        self
    }

    /// Arm a step-indexed [`Injection`] when the schedule starts. Kills
    /// are idempotent on the fault plane, so a step-indexed kill and a
    /// wall-clock kill of the same rank compose into exactly one kill
    /// event.
    pub fn inject(mut self, inj: Injection) -> Self {
        self.injections.push(inj);
        self
    }

    /// The armed step-indexed injections, for inspection.
    pub fn injections(&self) -> &[Injection] {
        &self.injections
    }

    /// Should `rank` kill itself upon reaching `iter`?
    pub fn kill_at_iteration(&self, rank: Rank, iter: u64) -> bool {
        self.at_iteration.iter().any(|&(r, i)| r == rank && i == iter)
    }

    /// Iteration-triggered kills, for inspection.
    pub fn iteration_kills(&self) -> &[(Rank, u64)] {
        &self.at_iteration
    }

    /// Wall-clock-triggered actions, for inspection. The process-backend
    /// supervisor reads these and enforces `KillRank`/`KillNode` as real
    /// `SIGKILL`s instead of liveness-flag poisoning.
    pub fn timed_actions(&self) -> &[(Duration, FaultAction)] {
        &self.timed
    }

    /// Serialize the schedule to bytes (environment-variable transport to
    /// child rank processes; pair with [`crate::codec::to_hex`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.at_iteration.len() as u64);
        for &(r, i) in &self.at_iteration {
            e.u32(r).u64(i);
        }
        e.u64(self.timed.len() as u64);
        for (d, a) in &self.timed {
            e.u64(d.as_nanos() as u64);
            a.encode(&mut e);
        }
        e.u64(self.injections.len() as u64);
        for inj in &self.injections {
            inj.encode(&mut e);
        }
        e.finish()
    }

    /// Inverse of [`FaultSchedule::encode`]; rejects trailing bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, CodecError> {
        let mut d = Dec::new(buf);
        let mut s = Self::default();
        for _ in 0..d.u64()? {
            s.at_iteration.push((d.u32()?, d.u64()?));
        }
        for _ in 0..d.u64()? {
            let after = Duration::from_nanos(d.u64()?);
            s.timed.push((after, FaultAction::decode(&mut d)?));
        }
        for _ in 0..d.u64()? {
            s.injections.push(Injection::decode(&mut d)?);
        }
        d.expect_end()?;
        Ok(s)
    }

    /// Spawn the timer thread applying the timed actions. The returned
    /// guard aborts outstanding actions when dropped. Step-indexed
    /// injections are armed on the plane before the timer starts.
    pub fn start_timer(&self, plane: Arc<FaultPlane>) -> ScheduleTimer {
        plane.arm_injections(InjectionPlan { injections: self.injections.clone() });
        let mut timed = self.timed.clone();
        timed.sort_by_key(|(d, _)| *d);
        let cancel = Arc::new(AtomicBool::new(false));
        let c2 = Arc::clone(&cancel);
        let handle = std::thread::Builder::new()
            .name("fault-schedule".into())
            .spawn(move || {
                let start = std::time::Instant::now();
                for (after, action) in timed {
                    loop {
                        if c2.load(Ordering::Acquire) {
                            return;
                        }
                        let elapsed = start.elapsed();
                        if elapsed >= after {
                            break;
                        }
                        let nap = (after - elapsed).min(Duration::from_millis(1));
                        std::thread::sleep(nap);
                    }
                    if c2.load(Ordering::Acquire) {
                        return;
                    }
                    action.apply(&plane);
                }
            })
            .expect("spawn fault-schedule thread");
        ScheduleTimer { cancel, handle: Some(handle) }
    }
}

/// Guard for the schedule timer thread; cancels pending actions on drop.
pub struct ScheduleTimer {
    cancel: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ScheduleTimer {
    /// Stop applying further actions and join the timer thread.
    pub fn cancel(mut self) {
        self.cancel.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }

    /// Wait for all scheduled actions to be applied.
    pub fn join(mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ScheduleTimer {
    fn drop(&mut self) {
        self.cancel.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(n: u32) -> Arc<FaultPlane> {
        FaultPlane::new(Topology::new(n, 2))
    }

    #[test]
    fn kill_rank_is_idempotent_and_bumps_epoch() {
        let p = plane(4);
        let e0 = p.epoch();
        assert!(p.kill_rank(1));
        assert!(!p.kill_rank(1));
        assert!(!p.is_alive(1));
        assert_eq!(p.alive_count(), 3);
        assert_eq!(p.epoch(), e0 + 1);
    }

    #[test]
    fn kill_node_takes_all_ranks_and_fires_hook_once() {
        let p = plane(6); // 2 ranks/node → 3 nodes
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s2 = Arc::clone(&seen);
        p.on_kill(move |ev| s2.lock().push(ev.clone()));
        let died = p.kill_node(NodeId(1));
        assert_eq!(died, vec![2, 3]);
        assert!(!p.node_is_alive(NodeId(1)));
        let evs = seen.lock();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].node, Some(NodeId(1)));
        assert_eq!(evs[0].ranks, vec![2, 3]);
    }

    #[test]
    fn directed_link_break_is_asymmetric() {
        let p = plane(4);
        p.break_link_directed(0, 1);
        assert!(!p.link_ok(0, 1));
        assert!(p.link_ok(1, 0));
        p.heal_link(0, 1);
        assert!(p.link_ok(0, 1));
    }

    #[test]
    fn link_ok_requires_both_endpoints_alive() {
        let p = plane(4);
        p.kill_rank(2);
        assert!(!p.link_ok(0, 2));
        assert!(!p.link_ok(2, 0));
        assert!(p.link_ok(0, 1));
    }

    #[test]
    fn assert_alive_raises_rank_killed() {
        let p = plane(2);
        p.kill_rank(0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.assert_alive(0)));
        let payload = r.unwrap_err();
        let rk = payload.downcast_ref::<RankKilled>().expect("RankKilled payload");
        assert_eq!(rk.rank, 0);
    }

    #[test]
    fn schedule_iteration_kills() {
        let s = FaultSchedule::none().kill_rank_at_iteration(3, 100).kill_rank_at_iteration(5, 100);
        assert!(s.kill_at_iteration(3, 100));
        assert!(!s.kill_at_iteration(3, 99));
        assert!(!s.kill_at_iteration(4, 100));
        assert_eq!(s.iteration_kills().len(), 2);
    }

    #[test]
    fn schedule_timer_applies_actions() {
        let p = plane(4);
        let s = FaultSchedule::none()
            .timed(Duration::from_millis(5), FaultAction::KillRank(1))
            .timed(Duration::from_millis(10), FaultAction::BreakLink(0, 2));
        let t = s.start_timer(Arc::clone(&p));
        t.join();
        assert!(!p.is_alive(1));
        assert!(!p.link_ok(0, 2));
    }

    #[test]
    fn schedule_timer_cancel_skips_pending() {
        let p = plane(4);
        let s = FaultSchedule::none().timed(Duration::from_secs(60), FaultAction::KillRank(1));
        let t = s.start_timer(Arc::clone(&p));
        t.cancel();
        assert!(p.is_alive(1));
    }

    #[test]
    fn fault_schedule_codec_roundtrip() {
        let s = FaultSchedule::none()
            .kill_rank_at_iteration(2, 130)
            .kill_rank_at_iteration(5, 220)
            .timed(Duration::from_millis(40), FaultAction::KillRank(3))
            .timed(Duration::from_millis(80), FaultAction::KillNode(NodeId(1)))
            .timed(Duration::from_millis(90), FaultAction::BreakLink(0, 2))
            .timed(Duration::from_millis(95), FaultAction::HealLink(0, 2))
            .inject(Injection::kill("gaspi.write", 1, 3))
            .inject(Injection::break_link("gaspi.allreduce", 2, 4, 5))
            .inject(Injection::heal_link("gaspi.allreduce", 2, 6, 5))
            .inject(Injection::delay("ckpt.restore", 4, 1, Duration::from_micros(10)));
        let bytes = s.encode();
        assert_eq!(FaultSchedule::decode(&bytes).unwrap(), s);
        // Hex round trip (how the supervisor actually ships it).
        let hex = crate::codec::to_hex(&bytes);
        assert_eq!(FaultSchedule::decode(&crate::codec::from_hex(&hex).unwrap()).unwrap(), s);
        // Empty schedule.
        let none = FaultSchedule::none();
        assert_eq!(FaultSchedule::decode(&none.encode()).unwrap(), none);
        // Truncation is loud.
        assert!(FaultSchedule::decode(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn sites_are_free_until_enabled() {
        let p = plane(4);
        p.site(0, "x");
        p.site(0, "x");
        // Nothing enabled injection: no counters were kept.
        assert_eq!(p.site_count("x", 0), 0);
        p.record_sites(8);
        p.site(0, "x");
        assert_eq!(p.site_count("x", 0), 1);
        assert_eq!(p.site_log().len(), 1);
    }

    #[test]
    fn site_kill_fires_at_exact_occurrence_and_raises() {
        let p = plane(4);
        let s = FaultSchedule::none().inject(Injection::kill("loop.step", 1, 3));
        let t = s.start_timer(Arc::clone(&p));
        t.join();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for _ in 0..5 {
                p.site(1, "loop.step");
            }
        }));
        let payload = r.unwrap_err();
        assert_eq!(payload.downcast_ref::<RankKilled>().unwrap().rank, 1);
        assert!(!p.is_alive(1));
        assert_eq!(p.site_count("loop.step", 1), 3);
        assert_eq!(p.injections_fired().len(), 1);
    }

    /// A wall-clock kill and a step-indexed kill of the same rank must
    /// compose into exactly one kill event — kill is idempotent on the
    /// plane, whichever trigger wins the race.
    #[test]
    fn timed_and_step_kills_compose_without_double_kill() {
        let p = plane(4);
        let events = Arc::new(Mutex::new(Vec::new()));
        let e2 = Arc::clone(&events);
        p.on_kill(move |ev| e2.lock().push(ev.clone()));
        // Wall-clock kill lands first…
        let s = FaultSchedule::none()
            .timed(Duration::ZERO, FaultAction::KillRank(1))
            .inject(Injection::kill("loop.step", 1, 1));
        let t = s.start_timer(Arc::clone(&p));
        t.join();
        assert!(!p.is_alive(1));
        // …then the victim's thread crosses the armed site anyway: it
        // must still unwind (it is dead), but not fire a second event.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.site(1, "loop.step")));
        assert!(r.unwrap_err().downcast_ref::<RankKilled>().is_some());
        let evs = events.lock();
        assert_eq!(evs.len(), 1, "one rank, two triggers, exactly one kill event");
        assert_eq!(evs[0].ranks, vec![1]);
    }

    /// Same composition, opposite order: the step kill fires first, the
    /// timed kill arrives later and must be a no-op.
    #[test]
    fn step_then_timed_kill_is_still_one_event() {
        let p = plane(4);
        let events = Arc::new(Mutex::new(Vec::new()));
        let e2 = Arc::clone(&events);
        p.on_kill(move |ev| e2.lock().push(ev.clone()));
        p.arm_injections(InjectionPlan::new().with(Injection::kill("loop.step", 2, 1)));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.site(2, "loop.step")));
        assert!(r.unwrap_err().downcast_ref::<RankKilled>().is_some());
        assert!(!p.kill_rank(2), "already dead: wall-clock kill is a no-op");
        assert_eq!(events.lock().len(), 1);
    }

    /// A supervisor-shaped schedule mixing timed link ops with
    /// step-indexed link ops must survive the hex trip the process
    /// backend actually ships (env var → child), byte for byte.
    #[test]
    fn link_ops_survive_the_supervisor_hex_trip() {
        let s = FaultSchedule::none()
            .timed(Duration::from_millis(40), FaultAction::BreakLink(5, 1))
            .timed(Duration::from_millis(120), FaultAction::HealLink(5, 1))
            .inject(Injection::break_link("gaspi.allreduce", 1, 2, 3))
            .inject(Injection::heal_link("gaspi.allreduce", 1, 4, 3));
        let hex = crate::codec::to_hex(&s.encode());
        let back = FaultSchedule::decode(&crate::codec::from_hex(&hex).unwrap()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.timed_actions().len(), 2);
        assert!(matches!(back.timed_actions()[0].1, FaultAction::BreakLink(5, 1)));
        assert!(matches!(back.timed_actions()[1].1, FaultAction::HealLink(5, 1)));
        assert_eq!(back.injections().len(), 2);
        assert_eq!(back.injections()[0].op, InjectOp::BreakLink { peer: 3 });
        assert_eq!(back.injections()[1].op, InjectOp::HealLink { peer: 3 });
    }

    #[test]
    fn link_hooks_fire_per_direction_on_break_and_heal() {
        let p = plane(4);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s2 = Arc::clone(&seen);
        p.on_link(move |src, dst, broken| s2.lock().push((src, dst, broken)));
        p.break_link(0, 2);
        p.heal_link(0, 2);
        p.break_link_directed(3, 1);
        let evs = seen.lock();
        assert_eq!(
            *evs,
            vec![(0, 2, true), (2, 0, true), (0, 2, false), (2, 0, false), (3, 1, true),]
        );
    }

    #[test]
    fn heal_link_injection_restores_flow() {
        let p = plane(4);
        p.arm_injections(
            InjectionPlan::new()
                .with(Injection::break_link("net.op", 0, 1, 2))
                .with(Injection::heal_link("net.op", 0, 2, 2)),
        );
        p.site(0, "net.op");
        assert!(!p.link_ok(0, 2));
        p.site(0, "net.op");
        assert!(p.link_ok(0, 2));
        assert!(p.is_alive(0), "link ops never kill");
    }

    #[test]
    fn break_link_and_delay_ops_do_not_unwind() {
        let p = plane(4);
        p.arm_injections(
            InjectionPlan::new()
                .with(Injection::break_link("net.op", 0, 1, 2))
                .with(Injection::delay("net.op", 0, 2, Duration::from_millis(1))),
        );
        p.site(0, "net.op"); // break link 0↔2
        assert!(!p.link_ok(0, 2));
        assert!(p.is_alive(0));
        p.site(0, "net.op"); // delay, returns
        assert!(p.is_alive(0));
    }

    #[test]
    fn passive_site_kill_poisons_without_unwinding() {
        let p = plane(6); // 2 ranks/node → 3 nodes
        p.arm_injections(InjectionPlan::new().with(Injection::kill_node("ckpt.copy", 2, 1)));
        p.site_passive(2, "ckpt.copy"); // must NOT panic this thread
        assert!(!p.is_alive(2));
        assert!(!p.is_alive(3), "node kill takes the whole node");
        assert!(!p.node_is_alive(NodeId(1)));
    }
}
