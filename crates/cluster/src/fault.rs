//! The fault plane: fail-stop process/node failures and network faults.
//!
//! The paper verified its recovery mechanism by killing processes three
//! ways (§VI): `exit(-1)` inside the program, `kill -9` from outside, and
//! physically introducing a network failure. The fault plane reproduces all
//! three:
//!
//! * [`FaultPlane::kill_rank`] — external kill (`kill -9`): the rank's
//!   liveness flag is poisoned; its next communication-layer call panics
//!   with [`RankKilled`], unwound to the rank-thread boundary.
//! * A rank may also kill *itself* (the `exit(-1)` style) by calling
//!   [`FaultPlane::kill_rank`] on its own rank and then raising
//!   [`RankKilled::raise`].
//! * [`FaultPlane::break_link`] — a network fault: both processes stay
//!   alive but messages between them are reported broken. Used to exercise
//!   the paper's *false positive* discussion (§IV-A-a): the fault detector
//!   suspects a healthy process and enforces its death via
//!   `gaspi_proc_kill`.
//!
//! Node kills ([`FaultPlane::kill_node`]) take down every rank placed on
//! the node *and* fire the registered kill hooks, which drop node-local
//! state (segments, node-level checkpoints) — the reason the checkpoint
//! library must replicate to a *neighbor* node.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use crate::topology::{NodeId, Rank, Topology};

/// Panic payload raised by a killed rank's next communication call.
///
/// The GASPI runtime installs a panic hook that silences this payload (it
/// is a *simulated* failure, not a bug) and catches it at the top of the
/// rank thread, turning the thread's outcome into "killed".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankKilled {
    /// The rank that died.
    pub rank: Rank,
}

impl RankKilled {
    /// Unwind the current rank thread with this payload.
    pub fn raise(self) -> ! {
        std::panic::panic_any(self)
    }
}

/// What happened in a kill event, passed to registered hooks.
#[derive(Debug, Clone)]
pub struct KillEvent {
    /// Ranks that died in this event (one for a process kill, all ranks of
    /// the node for a node kill).
    pub ranks: Vec<Rank>,
    /// Set when the whole node died, in which case node-local state must be
    /// dropped.
    pub node: Option<NodeId>,
}

type KillHook = Box<dyn Fn(&KillEvent) + Send + Sync>;

/// Shared liveness/link-state of the simulated cluster.
pub struct FaultPlane {
    topo: Topology,
    alive: Vec<AtomicBool>,
    node_alive: Vec<AtomicBool>,
    /// Directed broken links `(src, dst)`.
    broken_links: RwLock<HashSet<(Rank, Rank)>>,
    hooks: Mutex<Vec<KillHook>>,
    /// Bumped on every kill/link event; cheap freshness check for cached
    /// liveness views.
    epoch: AtomicU64,
}

impl FaultPlane {
    /// A fault plane where every rank and node starts healthy.
    pub fn new(topo: Topology) -> Arc<Self> {
        let alive = (0..topo.num_ranks()).map(|_| AtomicBool::new(true)).collect();
        let node_alive = (0..topo.num_nodes()).map(|_| AtomicBool::new(true)).collect();
        Arc::new(Self {
            topo,
            alive,
            node_alive,
            broken_links: RwLock::new(HashSet::new()),
            hooks: Mutex::new(Vec::new()),
            epoch: AtomicU64::new(0),
        })
    }

    /// The topology this plane covers.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Liveness of a rank.
    pub fn is_alive(&self, rank: Rank) -> bool {
        self.alive[rank as usize].load(Ordering::Acquire)
    }

    /// Liveness of a node.
    pub fn node_is_alive(&self, node: NodeId) -> bool {
        self.node_alive[node.0 as usize].load(Ordering::Acquire)
    }

    /// Number of ranks still alive.
    pub fn alive_count(&self) -> u32 {
        self.alive.iter().filter(|a| a.load(Ordering::Acquire)).count() as u32
    }

    /// Panic with [`RankKilled`] if `rank` has been killed. Communication
    /// entry points call this so a killed rank stops at its next call —
    /// fail-stop semantics without force-killing OS threads.
    pub fn assert_alive(&self, rank: Rank) {
        if !self.is_alive(rank) {
            RankKilled { rank }.raise();
        }
    }

    /// Current fault epoch; bumped by every kill or link change.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Register a hook to run on every kill event (e.g. drop node storage,
    /// wake blocked waiters). Hooks run on the killer's thread, outside the
    /// plane's locks.
    pub fn on_kill(&self, hook: impl Fn(&KillEvent) + Send + Sync + 'static) {
        self.hooks.lock().push(Box::new(hook));
    }

    fn fire(&self, ev: KillEvent) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
        let hooks = self.hooks.lock();
        for h in hooks.iter() {
            h(&ev);
        }
    }

    /// Kill a single rank (fail-stop). Returns `true` if this call killed
    /// it, `false` if it was already dead. Idempotent, as `gaspi_proc_kill`
    /// must be.
    pub fn kill_rank(&self, rank: Rank) -> bool {
        let first = self.alive[rank as usize].swap(false, Ordering::AcqRel);
        if first {
            self.fire(KillEvent { ranks: vec![rank], node: None });
        }
        first
    }

    /// Kill a whole node: all its ranks die and node-local state is
    /// dropped by the hooks. Returns the ranks that died with this call.
    pub fn kill_node(&self, node: NodeId) -> Vec<Rank> {
        let was_alive = self.node_alive[node.0 as usize].swap(false, Ordering::AcqRel);
        let mut died = Vec::new();
        for r in self.topo.ranks_on(node) {
            if self.alive[r as usize].swap(false, Ordering::AcqRel) {
                died.push(r);
            }
        }
        if was_alive || !died.is_empty() {
            self.fire(KillEvent { ranks: died.clone(), node: Some(node) });
        }
        died
    }

    /// Break the directed link `src → dst` (messages that way are reported
    /// broken; the reverse direction is unaffected).
    pub fn break_link_directed(&self, src: Rank, dst: Rank) {
        self.broken_links.write().insert((src, dst));
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Break both directions between `a` and `b`.
    pub fn break_link(&self, a: Rank, b: Rank) {
        {
            let mut l = self.broken_links.write();
            l.insert((a, b));
            l.insert((b, a));
        }
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Restore both directions between `a` and `b`.
    pub fn heal_link(&self, a: Rank, b: Rank) {
        {
            let mut l = self.broken_links.write();
            l.remove(&(a, b));
            l.remove(&(b, a));
        }
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Whether messages can flow `src → dst` right now (both endpoints
    /// alive, link intact).
    pub fn link_ok(&self, src: Rank, dst: Rank) -> bool {
        self.is_alive(src) && self.is_alive(dst) && !self.broken_links.read().contains(&(src, dst))
    }
}

/// One planned fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Kill one rank.
    KillRank(Rank),
    /// Kill a node and every rank on it.
    KillNode(NodeId),
    /// Break the (bidirectional) link between two ranks.
    BreakLink(Rank, Rank),
    /// Heal the (bidirectional) link between two ranks.
    HealLink(Rank, Rank),
}

impl FaultAction {
    fn apply(&self, plane: &FaultPlane) {
        match *self {
            FaultAction::KillRank(r) => {
                plane.kill_rank(r);
            }
            FaultAction::KillNode(n) => {
                plane.kill_node(n);
            }
            FaultAction::BreakLink(a, b) => plane.break_link(a, b),
            FaultAction::HealLink(a, b) => plane.heal_link(a, b),
        }
    }
}

/// A deterministic failure plan: iteration-triggered kills (the paper's
/// `exit(-1)` at a fixed iteration, for reproducible redo-work time) and
/// wall-clock-triggered actions (the paper's random `kill -9` during the
/// run, for Table I).
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    at_iteration: Vec<(Rank, u64)>,
    timed: Vec<(Duration, FaultAction)>,
}

impl FaultSchedule {
    /// An empty schedule (failure-free run).
    pub fn none() -> Self {
        Self::default()
    }

    /// Kill `rank` when *it* reaches iteration `iter` (the application
    /// driver polls [`FaultSchedule::kill_at_iteration`]).
    pub fn kill_rank_at_iteration(mut self, rank: Rank, iter: u64) -> Self {
        self.at_iteration.push((rank, iter));
        self
    }

    /// Apply `action` `after` the schedule timer starts.
    pub fn timed(mut self, after: Duration, action: FaultAction) -> Self {
        self.timed.push((after, action));
        self
    }

    /// Should `rank` kill itself upon reaching `iter`?
    pub fn kill_at_iteration(&self, rank: Rank, iter: u64) -> bool {
        self.at_iteration.iter().any(|&(r, i)| r == rank && i == iter)
    }

    /// Iteration-triggered kills, for inspection.
    pub fn iteration_kills(&self) -> &[(Rank, u64)] {
        &self.at_iteration
    }

    /// Spawn the timer thread applying the timed actions. The returned
    /// guard aborts outstanding actions when dropped.
    pub fn start_timer(&self, plane: Arc<FaultPlane>) -> ScheduleTimer {
        let mut timed = self.timed.clone();
        timed.sort_by_key(|(d, _)| *d);
        let cancel = Arc::new(AtomicBool::new(false));
        let c2 = Arc::clone(&cancel);
        let handle = std::thread::Builder::new()
            .name("fault-schedule".into())
            .spawn(move || {
                let start = std::time::Instant::now();
                for (after, action) in timed {
                    loop {
                        if c2.load(Ordering::Acquire) {
                            return;
                        }
                        let elapsed = start.elapsed();
                        if elapsed >= after {
                            break;
                        }
                        let nap = (after - elapsed).min(Duration::from_millis(1));
                        std::thread::sleep(nap);
                    }
                    if c2.load(Ordering::Acquire) {
                        return;
                    }
                    action.apply(&plane);
                }
            })
            .expect("spawn fault-schedule thread");
        ScheduleTimer { cancel, handle: Some(handle) }
    }
}

/// Guard for the schedule timer thread; cancels pending actions on drop.
pub struct ScheduleTimer {
    cancel: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ScheduleTimer {
    /// Stop applying further actions and join the timer thread.
    pub fn cancel(mut self) {
        self.cancel.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }

    /// Wait for all scheduled actions to be applied.
    pub fn join(mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ScheduleTimer {
    fn drop(&mut self) {
        self.cancel.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(n: u32) -> Arc<FaultPlane> {
        FaultPlane::new(Topology::new(n, 2))
    }

    #[test]
    fn kill_rank_is_idempotent_and_bumps_epoch() {
        let p = plane(4);
        let e0 = p.epoch();
        assert!(p.kill_rank(1));
        assert!(!p.kill_rank(1));
        assert!(!p.is_alive(1));
        assert_eq!(p.alive_count(), 3);
        assert_eq!(p.epoch(), e0 + 1);
    }

    #[test]
    fn kill_node_takes_all_ranks_and_fires_hook_once() {
        let p = plane(6); // 2 ranks/node → 3 nodes
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s2 = Arc::clone(&seen);
        p.on_kill(move |ev| s2.lock().push(ev.clone()));
        let died = p.kill_node(NodeId(1));
        assert_eq!(died, vec![2, 3]);
        assert!(!p.node_is_alive(NodeId(1)));
        let evs = seen.lock();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].node, Some(NodeId(1)));
        assert_eq!(evs[0].ranks, vec![2, 3]);
    }

    #[test]
    fn directed_link_break_is_asymmetric() {
        let p = plane(4);
        p.break_link_directed(0, 1);
        assert!(!p.link_ok(0, 1));
        assert!(p.link_ok(1, 0));
        p.heal_link(0, 1);
        assert!(p.link_ok(0, 1));
    }

    #[test]
    fn link_ok_requires_both_endpoints_alive() {
        let p = plane(4);
        p.kill_rank(2);
        assert!(!p.link_ok(0, 2));
        assert!(!p.link_ok(2, 0));
        assert!(p.link_ok(0, 1));
    }

    #[test]
    fn assert_alive_raises_rank_killed() {
        let p = plane(2);
        p.kill_rank(0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.assert_alive(0)));
        let payload = r.unwrap_err();
        let rk = payload.downcast_ref::<RankKilled>().expect("RankKilled payload");
        assert_eq!(rk.rank, 0);
    }

    #[test]
    fn schedule_iteration_kills() {
        let s = FaultSchedule::none().kill_rank_at_iteration(3, 100).kill_rank_at_iteration(5, 100);
        assert!(s.kill_at_iteration(3, 100));
        assert!(!s.kill_at_iteration(3, 99));
        assert!(!s.kill_at_iteration(4, 100));
        assert_eq!(s.iteration_kills().len(), 2);
    }

    #[test]
    fn schedule_timer_applies_actions() {
        let p = plane(4);
        let s = FaultSchedule::none()
            .timed(Duration::from_millis(5), FaultAction::KillRank(1))
            .timed(Duration::from_millis(10), FaultAction::BreakLink(0, 2));
        let t = s.start_timer(Arc::clone(&p));
        t.join();
        assert!(!p.is_alive(1));
        assert!(!p.link_ok(0, 2));
    }

    #[test]
    fn schedule_timer_cancel_skips_pending() {
        let p = plane(4);
        let s = FaultSchedule::none().timed(Duration::from_secs(60), FaultAction::KillRank(1));
        let t = s.start_timer(Arc::clone(&p));
        t.cancel();
        assert!(p.is_alive(1));
    }
}
