//! Latency model and paper-scale conversion.
//!
//! The simulated network runs at microsecond scale where the paper's
//! InfiniBand + GPI-2 stack runs at millisecond scale (a `gaspi_proc_ping`
//! costs ≈1 ms there, §VI Table I). All mechanisms are latency-*driven*,
//! not latency-*dependent*: shrinking every constant by the same factor
//! preserves the shape of every measured curve. [`PaperScale`] carries the
//! factor so harnesses can print measured numbers next to extrapolated
//! paper-scale numbers.

use std::time::Duration;

/// Latency/bandwidth model for the simulated interconnect.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyModel {
    /// Fixed per-message cost (wire + runtime overhead), one way.
    pub base: Duration,
    /// Transfer cost per byte in nanoseconds (inverse bandwidth), one way.
    /// `0.5` ≈ 2 GB/s.
    pub per_byte_ns: f64,
    /// Relative jitter: each latency is multiplied by a factor drawn
    /// uniformly from `[1 - jitter, 1 + jitter]`. Zero disables jitter and
    /// makes message timing fully deterministic.
    pub jitter: f64,
    /// How long the transport takes to report a message to a dead rank or
    /// across a broken link as [`crate::Outcome::Broken`]. Models the
    /// RDMA-connection-break detection the paper's ping relies on.
    pub break_detect: Duration,
}

impl LatencyModel {
    /// Default model: 20 µs base latency, ~2 GB/s bandwidth, 5 % jitter,
    /// 200 µs break detection. Roughly 1/50 of the paper's timescale.
    pub fn default_sim() -> Self {
        Self {
            base: Duration::from_micros(20),
            per_byte_ns: 0.5,
            jitter: 0.05,
            break_detect: Duration::from_micros(200),
        }
    }

    /// A fully deterministic model for unit tests: fixed latencies, no
    /// jitter, fast break detection.
    pub fn deterministic_fast() -> Self {
        Self {
            base: Duration::from_micros(5),
            per_byte_ns: 0.0,
            jitter: 0.0,
            break_detect: Duration::from_micros(50),
        }
    }

    /// One-way latency for a message of `bytes` payload bytes, before
    /// jitter.
    pub fn latency(&self, bytes: usize) -> Duration {
        self.base + Duration::from_nanos((self.per_byte_ns * bytes as f64) as u64)
    }

    /// Latency with jitter applied; `u` must be uniform in `[0, 1)`.
    pub fn latency_jittered(&self, bytes: usize, u: f64) -> Duration {
        let l = self.latency(bytes);
        if self.jitter == 0.0 {
            return l;
        }
        let factor = 1.0 + self.jitter * (2.0 * u - 1.0);
        l.mul_f64(factor.max(0.0))
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::default_sim()
    }
}

/// Conversion between simulated time and the paper's wall-clock scale.
///
/// The factor is chosen so that one simulated ping (≈`2 * base`) maps onto
/// the paper's ≈1 ms per-ping cost.
#[derive(Debug, Clone, Copy)]
pub struct PaperScale {
    /// Multiply a simulated duration by this to get a paper-scale estimate.
    pub factor: f64,
}

impl PaperScale {
    /// Paper per-ping cost (Table I: "approximately 1 ms to perform a ping
    /// with each healthy process").
    pub const PAPER_PING: Duration = Duration::from_millis(1);

    /// Derive the scale from a latency model: paper ping time divided by
    /// the model's round-trip time for an empty message.
    pub fn from_model(model: &LatencyModel) -> Self {
        let sim_ping = model.latency(0).as_secs_f64() * 2.0;
        Self { factor: Self::PAPER_PING.as_secs_f64() / sim_ping }
    }

    /// Scale a simulated duration up to the paper's timescale.
    pub fn to_paper(&self, sim: Duration) -> Duration {
        sim.mul_f64(self.factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_affine_in_bytes() {
        let m = LatencyModel {
            base: Duration::from_micros(10),
            per_byte_ns: 2.0,
            jitter: 0.0,
            break_detect: Duration::from_micros(100),
        };
        assert_eq!(m.latency(0), Duration::from_micros(10));
        assert_eq!(m.latency(1000), Duration::from_micros(12));
    }

    #[test]
    fn jitter_bounds() {
        let m = LatencyModel { jitter: 0.1, ..LatencyModel::deterministic_fast() };
        let lo = m.latency_jittered(0, 0.0);
        let hi = m.latency_jittered(0, 0.9999);
        let nominal = m.latency(0);
        assert!(lo < nominal && hi > nominal);
        assert!(lo >= nominal.mul_f64(0.9));
        assert!(hi <= nominal.mul_f64(1.1));
    }

    #[test]
    fn zero_jitter_is_exact() {
        let m = LatencyModel::deterministic_fast();
        assert_eq!(m.latency_jittered(64, 0.77), m.latency(64));
    }

    #[test]
    fn paper_scale_roundtrip() {
        let m = LatencyModel::deterministic_fast();
        let s = PaperScale::from_model(&m);
        // sim ping = 10 µs, paper ping = 1 ms → factor 100
        assert!((s.factor - 100.0).abs() < 1e-9);
        assert_eq!(s.to_paper(Duration::from_micros(10)), Duration::from_millis(1));
    }
}
