//! A small self-describing little-endian codec.
//!
//! Originally the checkpoint payload format, promoted into the cluster
//! substrate when the transport grew a wire: checkpoints, fault schedules,
//! and RPC payloads all cross process boundaries as raw bytes and must be
//! byte-exact and dependency-free. Every value is written with an explicit
//! length where variable, so decoding a truncated or mismatched blob fails
//! loudly instead of misreading.

use std::fmt;

/// FNV-1a 64-bit hash — the content hash of the incremental checkpoint
/// pipeline (chunk identity and whole-payload checksums). Dependency-free
/// and stable across platforms, which is all a *simulated* content store
/// needs; it is not collision-resistant against adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Read past the end of the buffer.
    Eof {
        /// Bytes requested.
        want: usize,
        /// Bytes remaining.
        have: usize,
    },
    /// A length prefix is implausible for the remaining buffer.
    BadLength(u64),
    /// An enum tag byte outside the known range.
    BadTag(u8),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Eof { want, have } => write!(f, "codec EOF: want {want}, have {have}"),
            CodecError::BadLength(n) => write!(f, "codec bad length prefix {n}"),
            CodecError::BadTag(t) => write!(f, "codec bad enum tag {t}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encoder: append values, then [`Enc::finish`].
#[derive(Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encoder with a capacity hint.
    pub fn with_capacity(n: usize) -> Self {
        Self { buf: Vec::with_capacity(n) }
    }

    /// Append a single raw byte (enum tags).
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append an `f64`.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a length-prefixed `f64` slice.
    pub fn f64s(&mut self, vs: &[f64]) -> &mut Self {
        self.u64(vs.len() as u64);
        for v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        self
    }

    /// Append a length-prefixed `u32` slice.
    pub fn u32s(&mut self, vs: &[u32]) -> &mut Self {
        self.u64(vs.len() as u64);
        for v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        self
    }

    /// Append a length-prefixed `u64` slice.
    pub fn u64s(&mut self, vs: &[u64]) -> &mut Self {
        self.u64(vs.len() as u64);
        for v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        self
    }

    /// Append length-prefixed raw bytes.
    pub fn bytes(&mut self, bs: &[u8]) -> &mut Self {
        self.u64(bs.len() as u64);
        self.buf.extend_from_slice(bs);
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes())
    }

    /// Pad with zero bytes until the encoded length is a multiple of
    /// `align`. Used by chunk-aligned checkpoint layouts so that sections
    /// start on chunk boundaries and an append-only section dirties only
    /// its final chunk. No-op when already aligned; `align` must be ≥ 1.
    pub fn pad_to(&mut self, align: usize) -> &mut Self {
        debug_assert!(align >= 1);
        let rem = self.buf.len() % align;
        if rem != 0 {
            self.buf.resize(self.buf.len() + (align - rem), 0);
        }
        self
    }

    /// Take the encoded buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded size.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Decoder over a byte slice; reads must mirror the encode order.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decode from `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let have = self.buf.len() - self.pos;
        if n > have {
            return Err(CodecError::Eof { want: n, have });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a single raw byte (enum tags).
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read an `f64`.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn len_prefix(&mut self, elem: usize) -> Result<usize, CodecError> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n.checked_mul(elem as u64).is_none_or(|need| need > remaining) {
            return Err(CodecError::BadLength(n));
        }
        Ok(n as usize)
    }

    /// Read a length-prefixed `f64` slice.
    pub fn f64s(&mut self) -> Result<Vec<f64>, CodecError> {
        let n = self.len_prefix(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    /// Read a length-prefixed `u32` slice.
    pub fn u32s(&mut self) -> Result<Vec<u32>, CodecError> {
        let n = self.len_prefix(4)?;
        (0..n).map(|_| self.u32()).collect()
    }

    /// Read a length-prefixed `u64` slice.
    pub fn u64s(&mut self) -> Result<Vec<u64>, CodecError> {
        let n = self.len_prefix(8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    /// Read length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let n = self.len_prefix(1)?;
        Ok(self.take(n)?.to_vec())
    }

    /// Read a length-prefixed UTF-8 string (lossy on invalid UTF-8 —
    /// schedule payloads are produced by `Enc::str`, so this only matters
    /// for corrupted input, which should still decode *loudly elsewhere*,
    /// not panic here).
    pub fn str(&mut self) -> Result<String, CodecError> {
        Ok(String::from_utf8_lossy(&self.bytes()?).into_owned())
    }

    /// Skip `n` bytes (padding written by [`Enc::pad_to`]).
    pub fn skip(&mut self, n: usize) -> Result<(), CodecError> {
        self.take(n).map(|_| ())
    }

    /// Skip forward to the next multiple of `align`, mirroring
    /// [`Enc::pad_to`]. Errors with [`CodecError::Eof`] if the padding
    /// would run past the buffer (a truncated blob).
    pub fn align_to(&mut self, align: usize) -> Result<(), CodecError> {
        debug_assert!(align >= 1);
        let rem = self.pos % align;
        if rem != 0 {
            self.skip(align - rem)?;
        }
        Ok(())
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Assert full consumption (checkpoints should decode exactly).
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::BadLength(self.remaining() as u64));
        }
        Ok(())
    }
}

/// Lowercase hex encoding, for shipping binary blobs through environment
/// variables and line-oriented pipes (the process-backend supervisor
/// hands children their fault schedule this way).
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit(u32::from(b >> 4), 16).unwrap());
        s.push(char::from_digit(u32::from(b & 0xf), 16).unwrap());
    }
    s
}

/// Inverse of [`to_hex`].
pub fn from_hex(s: &str) -> Result<Vec<u8>, CodecError> {
    let s = s.trim();
    if !s.len().is_multiple_of(2) {
        return Err(CodecError::BadLength(s.len() as u64));
    }
    let digits: Result<Vec<u8>, CodecError> = s
        .bytes()
        .map(|c| match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(CodecError::BadTag(c)),
        })
        .collect();
    let digits = digits?;
    Ok(digits.chunks(2).map(|p| (p[0] << 4) | p[1]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed() {
        let mut e = Enc::new();
        e.u64(42).u32(7).f64(-1.5).f64s(&[1.0, 2.0, 3.0]).u32s(&[9, 8]).bytes(b"xyz");
        let buf = e.finish();
        let mut d = Dec::new(&buf);
        assert_eq!(d.u64().unwrap(), 42);
        assert_eq!(d.u32().unwrap(), 7);
        assert_eq!(d.f64().unwrap(), -1.5);
        assert_eq!(d.f64s().unwrap(), vec![1.0, 2.0, 3.0]);
        assert_eq!(d.u32s().unwrap(), vec![9, 8]);
        assert_eq!(d.bytes().unwrap(), b"xyz");
        d.expect_end().unwrap();
    }

    #[test]
    fn truncation_detected() {
        let mut e = Enc::new();
        e.f64s(&[1.0, 2.0]);
        let mut buf = e.finish();
        buf.truncate(buf.len() - 1);
        let mut d = Dec::new(&buf);
        assert!(d.f64s().is_err());
    }

    #[test]
    fn corrupt_length_prefix_rejected_without_alloc() {
        // A huge bogus length must be caught by the plausibility check.
        let mut buf = Vec::new();
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut d = Dec::new(&buf);
        assert!(matches!(d.f64s(), Err(CodecError::BadLength(_))));
    }

    #[test]
    fn expect_end_catches_trailing_garbage() {
        let mut e = Enc::new();
        e.u32(1);
        let mut buf = e.finish();
        buf.push(0);
        let mut d = Dec::new(&buf);
        d.u32().unwrap();
        assert!(d.expect_end().is_err());
    }

    #[test]
    fn padding_roundtrip_and_truncation() {
        let mut e = Enc::new();
        e.u64(7).pad_to(64);
        e.f64(1.5).pad_to(64).pad_to(64); // second pad is a no-op
        let buf = e.finish();
        assert_eq!(buf.len(), 128);
        let mut d = Dec::new(&buf);
        assert_eq!(d.u64().unwrap(), 7);
        d.align_to(64).unwrap();
        assert_eq!(d.f64().unwrap(), 1.5);
        d.align_to(64).unwrap();
        d.expect_end().unwrap();
        // Truncated padding is a loud EOF, not a silent success.
        let mut d = Dec::new(&buf[..100]);
        d.u64().unwrap();
        d.align_to(64).unwrap();
        d.f64().unwrap();
        assert!(d.align_to(64).is_err());
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        // Sensitivity: one flipped bit changes the hash.
        assert_ne!(fnv1a64(&[0u8; 32]), fnv1a64(&[1u8; 32]));
    }

    #[test]
    fn empty_slices() {
        let mut e = Enc::new();
        e.f64s(&[]).u32s(&[]).bytes(&[]);
        let buf = e.finish();
        let mut d = Dec::new(&buf);
        assert!(d.f64s().unwrap().is_empty());
        assert!(d.u32s().unwrap().is_empty());
        assert!(d.bytes().unwrap().is_empty());
        d.expect_end().unwrap();
    }

    #[test]
    fn str_and_u8_roundtrip() {
        let mut e = Enc::new();
        e.u8(3).str("gaspi.write");
        let buf = e.finish();
        let mut d = Dec::new(&buf);
        assert_eq!(d.u8().unwrap(), 3);
        assert_eq!(d.str().unwrap(), "gaspi.write");
        d.expect_end().unwrap();
    }

    #[test]
    fn hex_roundtrip_and_rejection() {
        let data = vec![0x00, 0x7f, 0xff, 0x10, 0xab];
        let h = to_hex(&data);
        assert_eq!(h, "007fff10ab");
        assert_eq!(from_hex(&h).unwrap(), data);
        assert_eq!(from_hex("AB").unwrap(), vec![0xab]);
        assert!(from_hex("abc").is_err()); // odd length
        assert!(from_hex("zz").is_err()); // bad digit
        assert!(from_hex("").unwrap().is_empty());
    }
}
