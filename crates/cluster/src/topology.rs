//! Ranks, nodes, and their placement.
//!
//! The paper runs one GASPI process per node (256 processes on 256 nodes)
//! but the mechanisms also work with several processes per node, and node
//! failures then take down all ranks placed on the node at once — the
//! "likely scenario" behind the paper's *3 simultaneous failures* case.

use std::fmt;

/// A GASPI process identifier, 0-based and dense, as in `gaspi_proc_rank`.
pub type Rank = u32;

/// A compute-node identifier, 0-based and dense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Static rank↔node placement for a simulated cluster run.
///
/// Placement is block-wise: ranks `[n*rpn, (n+1)*rpn)` live on node `n`,
/// which mirrors the usual `mpirun`/`gaspi_run` fill order. The last node
/// may be partially filled if `num_ranks` is not a multiple of
/// `ranks_per_node`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    num_ranks: u32,
    ranks_per_node: u32,
}

impl Topology {
    /// Create a placement of `num_ranks` ranks, `ranks_per_node` per node.
    ///
    /// # Panics
    /// Panics if either argument is zero.
    pub fn new(num_ranks: u32, ranks_per_node: u32) -> Self {
        assert!(num_ranks > 0, "topology needs at least one rank");
        assert!(ranks_per_node > 0, "topology needs at least one rank per node");
        Self { num_ranks, ranks_per_node }
    }

    /// One rank per node — the paper's configuration.
    pub fn one_per_node(num_ranks: u32) -> Self {
        Self::new(num_ranks, 1)
    }

    /// Total number of ranks in the job.
    pub fn num_ranks(&self) -> u32 {
        self.num_ranks
    }

    /// Ranks co-located on a node.
    pub fn ranks_per_node(&self) -> u32 {
        self.ranks_per_node
    }

    /// Number of (fully or partially occupied) nodes.
    pub fn num_nodes(&self) -> u32 {
        self.num_ranks.div_ceil(self.ranks_per_node)
    }

    /// The node hosting `rank`.
    ///
    /// # Panics
    /// Panics if `rank` is out of range.
    pub fn node_of(&self, rank: Rank) -> NodeId {
        assert!(rank < self.num_ranks, "rank {rank} out of range");
        NodeId(rank / self.ranks_per_node)
    }

    /// All ranks hosted on `node`, in ascending order.
    pub fn ranks_on(&self, node: NodeId) -> impl Iterator<Item = Rank> + '_ {
        let start = node.0 * self.ranks_per_node;
        let end = (start + self.ranks_per_node).min(self.num_ranks);
        start..end
    }

    /// Whether two ranks share a node (checkpoint *neighbor* copies must
    /// cross node boundaries to survive node failures).
    pub fn same_node(&self, a: Rank, b: Rank) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Iterate over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes()).map(NodeId)
    }

    /// The next node in the ring, skipping nodes for which `dead` returns
    /// true. Returns `None` if every *other* node is dead.
    ///
    /// This is the basic neighbor function of the checkpoint library; after
    /// failures the library re-evaluates it with an updated `dead`
    /// predicate ("fault-aware" refresh, paper §IV-C).
    pub fn next_live_node(
        &self,
        from: NodeId,
        mut dead: impl FnMut(NodeId) -> bool,
    ) -> Option<NodeId> {
        let n = self.num_nodes();
        for step in 1..n {
            let cand = NodeId((from.0 + step) % n);
            if !dead(cand) {
                return Some(cand);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_placement() {
        let t = Topology::new(10, 4);
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.node_of(0), NodeId(0));
        assert_eq!(t.node_of(3), NodeId(0));
        assert_eq!(t.node_of(4), NodeId(1));
        assert_eq!(t.node_of(9), NodeId(2));
        assert_eq!(t.ranks_on(NodeId(2)).collect::<Vec<_>>(), vec![8, 9]);
    }

    #[test]
    fn one_per_node_matches_paper_setup() {
        let t = Topology::one_per_node(256);
        assert_eq!(t.num_nodes(), 256);
        for r in [0u32, 17, 255] {
            assert_eq!(t.node_of(r), NodeId(r));
        }
    }

    #[test]
    fn same_node_detection() {
        let t = Topology::new(8, 2);
        assert!(t.same_node(0, 1));
        assert!(!t.same_node(1, 2));
    }

    #[test]
    fn next_live_node_skips_dead() {
        let t = Topology::new(6, 1);
        let dead = [false, true, true, false, false, false];
        let nxt = t.next_live_node(NodeId(0), |n| dead[n.0 as usize]);
        assert_eq!(nxt, Some(NodeId(3)));
        // wrap-around
        let nxt = t.next_live_node(NodeId(5), |n| dead[n.0 as usize]);
        assert_eq!(nxt, Some(NodeId(0)));
    }

    #[test]
    fn next_live_node_none_when_all_others_dead() {
        let t = Topology::new(3, 1);
        let nxt = t.next_live_node(NodeId(1), |n| n != NodeId(1));
        assert_eq!(nxt, None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_of_rejects_out_of_range() {
        Topology::new(4, 2).node_of(4);
    }
}
