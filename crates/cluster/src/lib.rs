//! # ft-cluster — simulated HPC cluster substrate
//!
//! This crate models the hardware the paper ran on (the RRZE *LiMa*
//! cluster: nodes connected by QDR InfiniBand) inside a single OS process,
//! so that the GASPI-level fault-tolerance machinery built on top of it can
//! be exercised, failed, and benchmarked deterministically on a laptop.
//!
//! The pieces:
//!
//! * [`topology`] — ranks, nodes, and the rank↔node placement.
//! * [`fault`] — the *fault plane*: per-rank liveness, node kills, link
//!   (network) faults, and failure schedules. Fail-stop failures are
//!   modeled by poisoning a rank's liveness flag; the communication layer
//!   panics with [`fault::RankKilled`] at the rank's next call, which the
//!   runtime catches at the rank-thread boundary.
//! * [`transport`] — an in-memory network with a *sharded* timing-wheel
//!   scheduler (one heap + lock + scheduler thread per node-group shard):
//!   messages are posted with a byte count, acquire a latency from the
//!   [`time::LatencyModel`] (jitter drawn from counter-based per-stream
//!   RNG streams, so same-seed runs are bit-identical regardless of thread
//!   interleaving or shard count), and are delivered (their action closure
//!   runs) when due. Messages between the same (source, queue, target)
//!   triple are delivered in FIFO order, like a GASPI queue. Delivery to a
//!   dead rank or across a broken link completes with
//!   [`transport::Outcome::Broken`] after a configurable break-detection
//!   delay — this is what makes `gaspi_proc_ping` return an error for
//!   failed processes.
//! * [`storage`] — node-local in-memory storage that is destroyed when its
//!   node is killed; the neighbor-level checkpoint library builds on it.
//! * [`metrics`] — cheap atomic counters for messages/bytes/pings.
//! * [`time`] — the latency model and paper-scale conversion helpers.

#![warn(missing_docs)]

pub mod codec;
pub mod fault;
pub mod host;
pub mod inject;
pub mod metrics;
pub mod storage;
pub mod tcp;
pub mod time;
pub mod topology;
pub mod transport;

pub use codec::{CodecError, Dec, Enc};
pub use fault::{
    FaultAction, FaultPlane, FaultSchedule, RankKilled, ScheduleTimer, KILLED_EXIT_CODE,
};
pub use host::{RankHost, ThreadHost};
pub use inject::{site_is_deterministic, InjectOp, Injection, InjectionPlan, SiteName, SiteRecord};
pub use metrics::{Metrics, MetricsSnapshot};
pub use storage::{BlobKey, NodeStorage};
pub use tcp::TcpTransport;
pub use time::LatencyModel;
pub use topology::{NodeId, Rank, Topology};
pub use transport::{
    default_shards, stream_jitter_u, Completion, Endpoint, Envelope, FanoutCompletion, Outcome,
    QueueId, SimTransport, Transport, TransportOwner,
};
