//! Property tests for topology and fault-plane invariants.

use proptest::prelude::*;

use ft_cluster::{FaultPlane, NodeId, Topology};

proptest! {
    /// Node ranges tile the rank space and owner lookups agree.
    #[test]
    fn placement_tiles_ranks(num_ranks in 1u32..2000, rpn in 1u32..64) {
        let t = Topology::new(num_ranks, rpn);
        let mut covered = 0u32;
        for node in t.nodes() {
            let ranks: Vec<u32> = t.ranks_on(node).collect();
            prop_assert!(!ranks.is_empty(), "no empty nodes");
            for &r in &ranks {
                prop_assert_eq!(t.node_of(r), node);
                prop_assert_eq!(r, covered);
                covered += 1;
            }
        }
        prop_assert_eq!(covered, num_ranks);
        prop_assert!(t.num_nodes() <= num_ranks);
    }

    /// next_live_node never returns the origin, never returns a dead
    /// node, and returns None exactly when every other node is dead.
    #[test]
    fn next_live_node_contract(
        n in 2u32..40,
        dead_bits in proptest::collection::vec(any::<bool>(), 40),
    ) {
        let t = Topology::one_per_node(n);
        let dead = |node: NodeId| dead_bits[node.0 as usize];
        for from in t.nodes() {
            match t.next_live_node(from, dead) {
                Some(next) => {
                    prop_assert_ne!(next, from);
                    prop_assert!(!dead(next));
                }
                None => {
                    for other in t.nodes().filter(|&x| x != from) {
                        prop_assert!(dead(other), "None only when all others dead");
                    }
                }
            }
        }
    }

    /// Killing any subset of ranks leaves consistent liveness counts and
    /// link states.
    #[test]
    fn kill_consistency(n in 1u32..64, kills in proptest::collection::vec(0u32..64, 0..20)) {
        let t = Topology::new(n, 2);
        let plane = FaultPlane::new(t);
        let mut expected_dead = std::collections::HashSet::new();
        for k in kills {
            if k < n {
                plane.kill_rank(k);
                expected_dead.insert(k);
            }
        }
        prop_assert_eq!(plane.alive_count(), n - expected_dead.len() as u32);
        for r in 0..n {
            prop_assert_eq!(plane.is_alive(r), !expected_dead.contains(&r));
            for s in 0..n {
                let ok = plane.link_ok(r, s);
                prop_assert_eq!(
                    ok,
                    !expected_dead.contains(&r) && !expected_dead.contains(&s)
                );
            }
        }
    }
}
