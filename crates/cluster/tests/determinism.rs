//! Regression tests for the determinism contract of the sharded
//! transport: latency assignment is a pure function of
//! `(root seed, src, queue, dst, message index)` — independent of thread
//! interleaving, lock-acquisition order, and shard count. This replaced a
//! global `Mutex<SmallRng>` whose draw order depended on which thread got
//! the lock first.
//!
//! Wall-clock assertions here are gap-guarded: we only assert delivery
//! *order* between messages whose computed due times differ by much more
//! than plausible scheduler wakeup noise, so the tests stay stable on
//! loaded single-core CI runners while still failing loudly if the
//! transport stops honoring the deterministic schedule.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use ft_cluster::fault::FaultPlane;
use ft_cluster::time::LatencyModel;
use ft_cluster::topology::Topology;
use ft_cluster::transport::{stream_jitter_u, Envelope, Outcome, SimTransport};

/// Latency model with a jitter spread (≈ 1..39 ms) that dwarfs scheduler
/// wakeup noise, so computed-order assertions are meaningful.
fn wide_jitter_model() -> LatencyModel {
    LatencyModel {
        base: Duration::from_millis(20),
        per_byte_ns: 0.0,
        jitter: 0.95,
        break_detect: Duration::from_micros(200),
    }
}

/// Post one message on each of `streams` distinct (src=0, queue, dst)
/// streams in a tight burst and return the streams in observed completion
/// order.
fn observed_order(seed: u64, shards: usize, streams: u32) -> Vec<u32> {
    let ranks = streams + 1;
    let fault = FaultPlane::new(Topology::one_per_node(ranks));
    let owner = SimTransport::start_sharded(wide_jitter_model(), fault, seed, shards);
    let t = owner.handle();
    let (tx, rx) = mpsc::channel();
    for dst in 1..=streams {
        let tx = tx.clone();
        t.post(Envelope {
            src: 0,
            dst,
            queue: 2,
            bytes: 0,
            action: Box::new(move |_, out| {
                assert_eq!(out, Outcome::Delivered);
                let _ = tx.send(dst);
            }),
        });
    }
    (0..streams).map(|_| rx.recv_timeout(Duration::from_secs(10)).expect("delivery")).collect()
}

/// The latency each stream's first message must be assigned, computed
/// from the public pure functions alone.
fn computed_latencies(seed: u64, streams: u32) -> Vec<(u32, Duration)> {
    let model = wide_jitter_model();
    (1..=streams)
        .map(|dst| (dst, model.latency_jittered(0, stream_jitter_u(seed, 0, 2, dst, 0))))
        .collect()
}

/// Assert that `order` respects every pair of computed latencies that
/// differ by more than `guard`.
fn assert_respects_schedule(order: &[u32], lats: &[(u32, Duration)], guard: Duration) {
    let pos = |d: u32| order.iter().position(|&x| x == d).unwrap();
    for &(a, la) in lats {
        for &(b, lb) in lats {
            if la + guard < lb {
                assert!(
                    pos(a) < pos(b),
                    "stream {a} (lat {la:?}) must deliver before {b} (lat {lb:?}); order {order:?}"
                );
            }
        }
    }
}

#[test]
fn delivery_order_matches_the_computed_schedule() {
    let lats = computed_latencies(42, 8);
    let order = observed_order(42, 4, 8);
    assert_respects_schedule(&order, &lats, Duration::from_millis(8));
}

#[test]
fn same_seed_runs_produce_identical_event_logs() {
    // Two fresh transports, same seed: the gap-guarded delivery orders
    // must agree with the same computed schedule, and with each other on
    // every well-separated pair.
    let lats = computed_latencies(7, 10);
    let a = observed_order(7, 4, 10);
    let b = observed_order(7, 4, 10);
    let guard = Duration::from_millis(8);
    assert_respects_schedule(&a, &lats, guard);
    assert_respects_schedule(&b, &lats, guard);
    // If every pairwise latency gap clears the guard, the full orders are
    // forced and must be exactly equal (true for this seed; the
    // assertion below documents it rather than assuming it).
    let mut sorted = lats.clone();
    sorted.sort_by_key(|&(_, l)| l);
    let forced = sorted.windows(2).all(|w| w[0].1 + guard < w[1].1);
    if forced {
        assert_eq!(a, b, "same seed, same schedule, different delivery order");
        let expect: Vec<u32> = sorted.iter().map(|&(d, _)| d).collect();
        assert_eq!(a, expect, "delivery order must equal the computed schedule");
    }
}

#[test]
fn latency_assignment_is_independent_of_shard_count() {
    // The schedule is a function of the seed and the stream identity
    // only; running the same posts over 1 shard and 5 shards must honor
    // the same computed order.
    let lats = computed_latencies(1234, 9);
    let guard = Duration::from_millis(8);
    for shards in [1usize, 2, 5] {
        let order = observed_order(1234, shards, 9);
        assert_respects_schedule(&order, &lats, guard);
    }
}

#[test]
fn different_seeds_draw_different_schedules() {
    // No wall clock needed: the draws themselves must differ somewhere.
    let a: Vec<u64> = (1u32..=16).map(|d| stream_jitter_u(1, 0, 2, d, 0).to_bits()).collect();
    let b: Vec<u64> = (1u32..=16).map(|d| stream_jitter_u(2, 0, 2, d, 0).to_bits()).collect();
    assert_ne!(a, b);
}

#[test]
fn per_stream_draw_sequences_are_deterministic_under_load() {
    // Hammer one transport from several threads, then verify via metrics
    // that nothing about concurrency perturbed the assignment: a second
    // identical run must observe the identical per-stream FIFO completion
    // count and the same (pure) draw sequence.
    let draws: Vec<u64> = (0..64).map(|n| stream_jitter_u(9, 3, 1, 5, n).to_bits()).collect();
    let again: Vec<u64> = (0..64).map(|n| stream_jitter_u(9, 3, 1, 5, n).to_bits()).collect();
    assert_eq!(draws, again);

    let fault = FaultPlane::new(Topology::one_per_node(8));
    let owner = SimTransport::start_sharded(LatencyModel::default_sim(), fault, 9, 4);
    let t = owner.handle();
    let counter = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    std::thread::scope(|s| {
        for src in 0..4u32 {
            let t = t.clone();
            let counter = Arc::clone(&counter);
            s.spawn(move || {
                for i in 0..100u32 {
                    let counter = Arc::clone(&counter);
                    t.post(Envelope {
                        src,
                        dst: 4 + (i % 4),
                        queue: 1,
                        bytes: 128,
                        action: Box::new(move |_, _| {
                            counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        }),
                    });
                }
            });
        }
    });
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while counter.load(std::sync::atomic::Ordering::SeqCst) < 400 {
        assert!(std::time::Instant::now() < deadline, "deliveries stalled");
        std::thread::sleep(Duration::from_millis(1));
    }
}
