//! Property test for the sharded transport's ordering contract: messages
//! on the same `(src, queue, dst)` stream are delivered in post order, for
//! every shard count, under genuinely concurrent senders.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::time::Duration;

use ft_cluster::fault::FaultPlane;
use ft_cluster::time::LatencyModel;
use ft_cluster::topology::Topology;
use ft_cluster::transport::{Envelope, Outcome, SimTransport};
use proptest::prelude::*;

/// One sender thread's plan: its source rank and the (dst, queue, bytes)
/// of each message it posts, in order.
#[derive(Debug, Clone)]
struct SenderPlan {
    src: u32,
    msgs: Vec<(u32, u16, usize)>,
}

/// Byte sizes drawn by index — a zero-cost, a typical, and a large
/// message whose higher latency would reorder streams without the
/// watermark.
const SIZES: [usize; 3] = [0, 64, 100_000];

fn run_case(ranks: u32, shards: usize, plans: &[SenderPlan]) {
    let fault = FaultPlane::new(Topology::one_per_node(ranks));
    let owner = SimTransport::start_sharded(LatencyModel::default_sim(), fault, 11, shards);
    let t = owner.handle();
    let total: usize = plans.iter().map(|p| p.msgs.len()).sum();
    let (tx, rx) = mpsc::channel::<((u32, u16, u32), u32)>();

    // Concurrent senders: each thread owns one src rank and posts its
    // streams interleaved with the other threads'.
    std::thread::scope(|s| {
        for plan in plans {
            let t = t.clone();
            let tx = tx.clone();
            s.spawn(move || {
                let mut per_stream: HashMap<(u32, u16, u32), u32> = HashMap::new();
                for &(dst, queue, bytes) in &plan.msgs {
                    let key = (plan.src, queue, dst);
                    let idx = per_stream.entry(key).or_insert(0);
                    let i = *idx;
                    *idx += 1;
                    let tx = tx.clone();
                    t.post(Envelope {
                        src: plan.src,
                        dst,
                        queue,
                        bytes,
                        action: Box::new(move |_, out| {
                            assert_eq!(out, Outcome::Delivered);
                            let _ = tx.send((key, i));
                        }),
                    });
                }
            });
        }
    });

    // Every stream must arrive 0, 1, 2, … in order.
    let mut next: HashMap<(u32, u16, u32), u32> = HashMap::new();
    for _ in 0..total {
        let (key, i) = rx.recv_timeout(Duration::from_secs(10)).expect("delivery");
        let n = next.entry(key).or_insert(0);
        assert_eq!(*n, i, "stream {key:?} delivered out of order ({shards} shards)");
        *n += 1;
    }
    // Self-deliveries (src == dst) complete but are not counted as
    // network deliveries.
    let network: usize =
        plans.iter().map(|p| p.msgs.iter().filter(|&&(d, _, _)| d != p.src).count()).sum();
    assert_eq!(t.metrics().msg_delivered.load(Ordering::Relaxed) as usize, network);
    drop(owner);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn per_stream_fifo_under_concurrent_senders(
        ranks in 4u32..24,
        shards in 1usize..5,
        raw in proptest::collection::vec(
            proptest::collection::vec((0u32..24, 0u16..3, 0usize..3), 1..40),
            1..5,
        ),
    ) {
        // Each drawn inner vec becomes one sender; srcs are distinct by
        // construction (enumeration), dsts are clamped into this case's
        // rank space, and the size index picks from SIZES.
        let plans: Vec<SenderPlan> = raw
            .into_iter()
            .enumerate()
            .map(|(i, msgs)| SenderPlan {
                src: i as u32 % ranks,
                msgs: msgs
                    .into_iter()
                    .map(|(d, q, s)| (d % ranks, q, SIZES[s]))
                    .collect(),
            })
            .collect();
        // Dedup sources (ranks can be < number of senders after clamping).
        let mut seen = std::collections::HashSet::new();
        let plans: Vec<SenderPlan> =
            plans.into_iter().filter(|p| seen.insert(p.src)).collect();
        prop_assume!(!plans.is_empty());
        run_case(ranks, shards, &plans);
    }
}

/// Deterministic smoke of the same contract at a fixed heavier size, so a
/// regression is caught even if the property draw happens to stay small.
#[test]
fn fifo_smoke_many_streams_many_shards() {
    let plans: Vec<SenderPlan> = (0..4)
        .map(|src| SenderPlan {
            src,
            msgs: (0..200)
                .map(|i| (4 + (i % 12), (i % 3) as u16, (i as usize % 7) * 512))
                .collect(),
        })
        .collect();
    run_case(16, 4, &plans);
}

/// Concurrent senders posting to the *same* destination from different
/// threads: per-sender streams stay FIFO even though they merge into one
/// shard and one endpoint rank.
#[test]
fn fifo_converging_on_one_destination() {
    let plans: Vec<SenderPlan> = (0..3)
        .map(|src| SenderPlan { src, msgs: (0..150).map(|i| (7, 0, (i % 2) * 4096)).collect() })
        .collect();
    run_case(8, 4, &plans);
}
