//! Criterion micro-benchmarks of the application substrates: graphene row
//! generation, local SpMV kernels, spMVM pre-processing, the QL
//! tridiagonal eigenvalue solve (the paper's `CalcMinimumEigenVal`
//! ingredient), and the checkpoint paths (local write, neighbor
//! replication, restore).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ft_checkpoint::{Checkpointer, CheckpointerConfig, CopyPolicy};
use ft_gaspi::{GaspiConfig, GaspiWorld};
use ft_matgen::graphene::Graphene;
use ft_matgen::RowGen;
use ft_solver::tridiag::tridiag_eigenvalues;
use ft_sparse::{CommPlan, DistMatrix, RowPartition};

fn bench_matgen(c: &mut Criterion) {
    let gen = Graphene::new(256, 256).with_nnn(-0.1).with_disorder(0.5, 9);
    let mut buf = Vec::new();
    c.bench_function("graphene row generation", |b| {
        let mut i = 0u64;
        b.iter(|| {
            gen.row(i % gen.dim(), &mut buf);
            i += 1;
            criterion::black_box(buf.len())
        });
    });
}

fn assemble(lx: u64, ly: u64, parts: u32, me: u32) -> DistMatrix {
    let gen = Graphene::new(lx, ly).with_nnn(-0.1);
    let part = RowPartition::new(gen.dim(), parts);
    let needed = DistMatrix::needed_columns(&gen, &part, me);
    let plan = CommPlan::receives_from_needs(me, parts, &needed);
    DistMatrix::assemble(&gen, part, me, plan)
}

fn bench_spmv(c: &mut Criterion) {
    let mut g = c.benchmark_group("local_spmv");
    for (lx, ly) in [(32u64, 32u64), (128, 128)] {
        let dm = assemble(lx, ly, 4, 1);
        let x = vec![1.0; dm.local_len()];
        let halo = vec![0.5; dm.plan.halo_len.max(1)];
        let mut y = vec![0.0; dm.local_len()];
        let rows = dm.local_len();
        g.bench_with_input(BenchmarkId::new("csr", rows), &rows, |b, _| {
            b.iter(|| {
                dm.spmv(&x, &halo, &mut y);
                criterion::black_box(y[0])
            });
        });
        // GHOST's SELL-C-σ format, bitwise-identical results.
        let dms = dm.clone().with_sell(8, 64);
        let mut y2 = vec![0.0; dms.local_len()];
        g.bench_with_input(BenchmarkId::new("sell_8_64", rows), &rows, |b, _| {
            b.iter(|| {
                dms.spmv(&x, &halo, &mut y2);
                criterion::black_box(y2[0])
            });
        });
        dm.spmv(&x, &halo, &mut y);
        assert_eq!(y, y2, "formats must agree bitwise");
    }
    g.finish();
}

fn bench_preprocessing(c: &mut Criterion) {
    // The pure (local) half of the paper's expensive pre-processing step:
    // needed-column scan + chunk assembly.
    let gen = Arc::new(Graphene::new(96, 64).with_nnn(-0.1));
    let part = RowPartition::new(gen.dim(), 8);
    c.bench_function("spmvm preprocessing (scan+assemble, 1 rank)", |b| {
        b.iter(|| {
            let needed = DistMatrix::needed_columns(gen.as_ref(), &part, 3);
            let plan = CommPlan::receives_from_needs(3, 8, &needed);
            criterion::black_box(DistMatrix::assemble(gen.as_ref(), part, 3, plan).a_loc.nnz())
        });
    });
}

fn bench_ql(c: &mut Criterion) {
    let mut g = c.benchmark_group("ql_tridiag_eigenvalues");
    for n in [100usize, 1000, 3500] {
        let alpha: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let beta: Vec<f64> = (0..n - 1).map(|i| 0.5 + (i as f64 * 0.05).cos() * 0.3).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| criterion::black_box(tridiag_eigenvalues(&alpha, &beta).len()));
        });
    }
    g.finish();
}

fn bench_checkpoint(c: &mut Criterion) {
    let world = GaspiWorld::new(GaspiConfig::new(4));
    let p1 = world.proc_handle(1);
    let ck = Checkpointer::new(&p1, CheckpointerConfig::for_tag(1), None);
    let mut g = c.benchmark_group("checkpoint");
    g.sample_size(20);
    for size in [4096usize, 1 << 20] {
        let payload = vec![0xA5u8; size];
        let mut v = 0u64;
        g.bench_with_input(BenchmarkId::new("local_write", size), &size, |b, _| {
            b.iter(|| {
                v += 1;
                ck.commit(v, payload.clone(), CopyPolicy::LocalOnly);
            });
        });
        g.bench_with_input(BenchmarkId::new("write_plus_neighbor_copy", size), &size, |b, _| {
            b.iter(|| {
                v += 1;
                ck.commit(v, payload.clone(), CopyPolicy::Replicate);
                assert!(ck.drain(Duration::from_secs(10)));
            });
        });
        g.bench_with_input(BenchmarkId::new("restore_local", size), &size, |b, _| {
            ck.commit(v, payload.clone(), CopyPolicy::Replicate);
            assert!(ck.drain(Duration::from_secs(10)));
            b.iter(|| {
                criterion::black_box(
                    ck.restore_latest(1, Duration::from_secs(5)).hit().unwrap().version,
                )
            });
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(Duration::from_secs(3));
    targets = bench_matgen, bench_spmv, bench_preprocessing, bench_ql, bench_checkpoint
);
criterion_main!(benches);
