//! **Strategy matrix** — the Fig. 4 overhead decomposition (OHF1
//! detection, OHF2 group rebuild, OHF3 restore, redo-work) measured
//! under all three recovery strategies on identical kill schedules:
//! checkpoint/restart (the paper's model), ABFT checksum reconstruction,
//! and hot-standby replication.
//!
//! The interesting contrast is *where the failure cost goes*. C/R pays
//! on failure: rollback to the last interval checkpoint plus redo of the
//! lost work. ABFT and replication pay per step (a parity allreduce, a
//! replica push) and resume at the failure frontier — their redo column
//! is structurally zero.
//!
//! Run: `cargo bench -p ft-bench --bench strategy_matrix`
//! Environment: `FT_MATRIX_SMOKE=1` shrinks the workload to CI size.
//!
//! Output: `target/telemetry/strategy_matrix.json`, schema
//! `gaspi-ft/strategy-matrix/v1`.

use std::time::Duration;

use ft_bench::scenario::{run_scenario, Kills, Scenario, ScenarioResult, Workload};
use ft_bench::table::Table;
use ft_core::StrategyKind;
use ft_telemetry::Json;

/// Schema tag of the emitted report.
const SCHEMA: &str = "gaspi-ft/strategy-matrix/v1";

const STRATEGIES: [StrategyKind; 3] =
    [StrategyKind::CheckpointRestart, StrategyKind::Abft, StrategyKind::Replicated];

/// The shared scenario set: failure-free, one mid-interval kill, two
/// sequential kills. Kill placement follows the Fig. 4 methodology —
/// 60 % of an interval past a checkpoint, so C/R's redo-work is
/// deterministic and maximally visible.
fn matrix_scenarios(w: &Workload) -> Vec<Scenario> {
    let iv = w.checkpoint_every;
    let kill_after = |ckpt_no: u64| ckpt_no * iv + (6 * iv) / 10;
    vec![
        Scenario {
            name: "failure-free",
            health_check: true,
            checkpointing: true,
            kills: Kills::None,
            fd_threads: 1,
        },
        Scenario {
            name: "1 fail",
            health_check: true,
            checkpointing: true,
            kills: Kills::AtIterations(vec![(1, kill_after(1))]),
            fd_threads: 1,
        },
        Scenario {
            name: "2 fail",
            health_check: true,
            checkpointing: true,
            kills: Kills::AtIterations(vec![(1, kill_after(1)), (2, kill_after(2))]),
            fd_threads: 1,
        },
    ]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn row_json(strategy: StrategyKind, r: &ScenarioResult) -> Json {
    Json::obj([
        ("strategy", Json::Str(strategy.name().to_string())),
        ("scenario", Json::Str(r.name.to_string())),
        ("total_ms", Json::Num(ms(r.total))),
        ("compute_ms", Json::Num(ms(r.compute))),
        ("ohf1_detect_ms", Json::Num(ms(r.detect))),
        ("ohf2_rebuild_ms", Json::Num(ms(r.telemetry.rebuild()))),
        ("ohf3_restore_ms", Json::Num(ms(r.telemetry.restore()))),
        ("redo_ms", Json::Num(ms(r.redo))),
        ("redo_epochs", Json::num_u64(r.telemetry.redo_epochs() as u64)),
        ("recoveries", Json::num_u64(r.recoveries as u64)),
        ("failures", Json::num_u64(r.failures as u64)),
        ("consistent", Json::Bool(r.consistent)),
    ])
}

fn main() {
    let smoke = std::env::var_os("FT_MATRIX_SMOKE").is_some();
    let base = if smoke {
        Workload {
            workers: 4,
            spares: 3,
            lx: 8,
            ly: 4,
            iters: 120,
            checkpoint_every: 40,
            scan_interval: Duration::from_millis(5),
            ..Workload::default()
        }
    } else {
        Workload::default()
    };
    println!(
        "Strategy matrix: FT-Lanczos on {} workers + {} spares, graphene {}x{} ({} rows), {} iterations, checkpoint every {}{}\n",
        base.workers,
        base.spares,
        base.lx,
        base.ly,
        2 * base.lx * base.ly,
        base.iters,
        base.checkpoint_every,
        if smoke { " [smoke]" } else { "" },
    );

    let mut t = Table::new(&[
        "strategy",
        "scenario",
        "total",
        "OHF1 detect",
        "OHF2 rebuild",
        "OHF3 restore",
        "redo",
        "redo epochs",
        "consistent",
    ]);
    let mut rows = Vec::new();
    for strategy in STRATEGIES {
        let w = Workload { strategy, ..base.clone() };
        for sc in matrix_scenarios(&w) {
            eprintln!("running: {} / {} ...", strategy.name(), sc.name);
            let r = run_scenario(&w, &sc);
            t.row(vec![
                strategy.name().to_string(),
                r.name.to_string(),
                format!("{:.3}s", r.total.as_secs_f64()),
                format!("{:.1}ms", ms(r.detect)),
                format!("{:.1}ms", ms(r.telemetry.rebuild())),
                format!("{:.1}ms", ms(r.telemetry.restore())),
                format!("{:.1}ms", ms(r.redo)),
                r.telemetry.redo_epochs().to_string(),
                r.consistent.to_string(),
            ]);
            rows.push((strategy, r));
        }
    }
    println!("{}", t.render());

    let doc = Json::obj([
        ("schema", Json::Str(SCHEMA.to_string())),
        (
            "workload",
            Json::obj([
                ("workers", Json::num_u64(u64::from(base.workers))),
                ("spares", Json::num_u64(u64::from(base.spares))),
                ("rows", Json::num_u64(2 * base.lx * base.ly)),
                ("iters", Json::num_u64(base.iters)),
                ("checkpoint_every", Json::num_u64(base.checkpoint_every)),
                ("smoke", Json::Bool(smoke)),
            ]),
        ),
        ("rows", Json::Arr(rows.iter().map(|(s, r)| row_json(*s, r)).collect())),
    ]);
    ft_bench::report::write_report("strategy_matrix.json", &doc);

    // ---- shape checks -------------------------------------------------
    assert!(rows.iter().all(|(_, r)| r.consistent), "every cell must end consistent");
    for (s, r) in &rows {
        if *s != StrategyKind::CheckpointRestart && r.failures > 0 {
            assert_eq!(
                r.telemetry.redo_epochs(),
                0,
                "{}/{}: frontier recovery must not redo work",
                s.name(),
                r.name
            );
        }
    }
    let cell = |s: StrategyKind, name: &str| {
        rows.iter().find(|(x, r)| *x == s && r.name == name).map(|(_, r)| r).unwrap()
    };
    let cr = cell(StrategyKind::CheckpointRestart, "1 fail");
    let rep = cell(StrategyKind::Replicated, "1 fail");
    let abft = cell(StrategyKind::Abft, "1 fail");
    println!("shape checks:");
    println!(
        "  1-fail failure cost (OHF3 + redo): C/R {:.1}ms, ABFT {:.1}ms, replication {:.1}ms",
        ms(cr.telemetry.restore() + cr.redo),
        ms(abft.telemetry.restore() + abft.redo),
        ms(rep.telemetry.restore() + rep.redo),
    );
    println!(
        "  1-fail steady-state (compute): C/R {:.3}s, ABFT {:.3}s, replication {:.3}s",
        cr.compute.as_secs_f64(),
        abft.compute.as_secs_f64(),
        rep.compute.as_secs_f64(),
    );
    assert!(cr.redo > Duration::ZERO, "C/R must show redo-work after a mid-interval kill");
}
