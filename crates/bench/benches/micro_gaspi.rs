//! Criterion micro-benchmarks of the GASPI layer primitives: ping RTT
//! (the FD's unit cost), one-sided write latency/bandwidth, notified
//! writes, and the collectives whose blocking cost dominates the paper's
//! OHF2 (group commit) — all on the simulated interconnect, so numbers
//! are simulation-scale and meant for *relative* comparisons.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ft_gaspi::{GaspiConfig, GaspiWorld, Timeout};

const SEG: u16 = 1;
const Q: u16 = 0;

fn bench_ping(c: &mut Criterion) {
    let world = GaspiWorld::new(GaspiConfig::new(4));
    let p = world.proc_handle(0);
    c.bench_function("proc_ping RTT", |b| {
        b.iter(|| p.proc_ping(1, Timeout::Ms(1000)).unwrap());
    });
}

fn bench_write(c: &mut Criterion) {
    let world = GaspiWorld::new(GaspiConfig::new(2));
    let p0 = world.proc_handle(0);
    let p1 = world.proc_handle(1);
    p0.segment_create(SEG, 1 << 21).unwrap();
    p1.segment_create(SEG, 1 << 21).unwrap();
    let mut g = c.benchmark_group("one_sided_write");
    for size in [8usize, 1024, 65536, 1 << 20] {
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            b.iter(|| {
                p0.write(SEG, 0, 1, SEG, 0, size, Q).unwrap();
                p0.wait(Q, Timeout::Ms(5000)).unwrap();
            });
        });
    }
    g.finish();
}

fn bench_write_notify_roundtrip(c: &mut Criterion) {
    let world = GaspiWorld::new(GaspiConfig::new(2));
    let p0 = world.proc_handle(0);
    let p1 = world.proc_handle(1);
    p0.segment_create(SEG, 4096).unwrap();
    p1.segment_create(SEG, 4096).unwrap();
    c.bench_function("write_notify + notify_waitsome", |b| {
        b.iter(|| {
            p0.write_notify(SEG, 0, 1, SEG, 0, 64, 3, 1, Q).unwrap();
            let nid = p1.notify_waitsome(SEG, 0, 8, Timeout::Ms(5000)).unwrap();
            p1.notify_reset(SEG, nid).unwrap();
            p0.wait(Q, Timeout::Ms(5000)).unwrap();
        });
    });
}

fn bench_atomics(c: &mut Criterion) {
    let world = GaspiWorld::new(GaspiConfig::new(2));
    let p0 = world.proc_handle(0);
    let p1 = world.proc_handle(1);
    let _ = p1;
    world.proc_handle(1).segment_create(SEG, 64).unwrap();
    c.bench_function("atomic_fetch_add RTT", |b| {
        b.iter(|| p0.atomic_fetch_add(1, SEG, 0, 1, Timeout::Ms(5000)).unwrap());
    });
}

/// Whole-group collectives: every rank performs `iters` operations; the
/// reported time is wall time per operation.
fn collective_cost(n: u32, iters: u64, op: &'static str) -> Duration {
    let world = GaspiWorld::new(GaspiConfig::new(n));
    let t0 = Instant::now();
    let outs = world
        .launch(move |p| {
            let g = p.group_create_with_id(1 << 32)?;
            for r in 0..p.num_ranks() {
                p.group_add(g, r)?;
            }
            p.group_commit(g, Timeout::Ms(10_000))?;
            for _ in 0..iters {
                match op {
                    "barrier" => p.barrier(g, Timeout::Ms(10_000))?,
                    _ => {
                        p.allreduce_f64(g, &[1.0], ft_gaspi::ReduceOp::Sum, Timeout::Ms(10_000))?;
                    }
                }
            }
            Ok(())
        })
        .join();
    assert!(outs.iter().all(|o| !o.was_killed()));
    t0.elapsed() / iters as u32
}

/// Group commit cost (the paper's OHF2 driver) by group size.
fn commit_cost(n: u32) -> Duration {
    let world = GaspiWorld::new(GaspiConfig::new(n));
    let t0 = Instant::now();
    let outs = world
        .launch(move |p| {
            let g = p.group_create_with_id(1 << 32)?;
            for r in 0..p.num_ranks() {
                p.group_add(g, r)?;
            }
            p.group_commit(g, Timeout::Ms(30_000))?;
            Ok(())
        })
        .join();
    assert_eq!(outs.len(), n as usize);
    t0.elapsed()
}

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives");
    g.sample_size(10).measurement_time(Duration::from_secs(4));
    for n in [4u32, 16, 64] {
        g.bench_with_input(BenchmarkId::new("barrier", n), &n, |b, &n| {
            b.iter_custom(|iters| collective_cost(n, iters.max(10), "barrier") * iters as u32);
        });
        g.bench_with_input(BenchmarkId::new("allreduce_f64", n), &n, |b, &n| {
            b.iter_custom(|iters| collective_cost(n, iters.max(10), "allreduce") * iters as u32);
        });
        g.bench_with_input(BenchmarkId::new("group_commit", n), &n, |b, &n| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += commit_cost(n);
                }
                total
            });
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(Duration::from_secs(3));
    targets = bench_ping, bench_write, bench_write_notify_roundtrip, bench_atomics, bench_collectives
);
criterion_main!(benches);
