//! **Ablation (paper §IV-A-b)** — failure-free overhead of the three
//! detector designs: the chosen *dedicated FD process* versus the
//! rejected *ping-based all-to-all* and *ping-based neighbor level*
//! running on the workers' critical path.
//!
//! The paper argues (and Kharbas et al. measured 1–21 % for MPI probing)
//! that inline detection steals compute time, while a dedicated FD with
//! one-sided pings "causes negligible overhead in failure-free cases".
//!
//! Run: `cargo bench -p ft-bench --bench ablation_detectors`

use std::time::Duration;

use ft_bench::miniapp::{InlineKind, MiniApp, MiniConfig};
use ft_bench::table::Table;
use ft_cluster::FaultSchedule;
use ft_core::{run_ft_job, FtConfig, WorldLayout};
use ft_gaspi::{GaspiConfig, GaspiWorld};

fn run_with(kind: InlineKind, fd_on: bool, workers: u32, iters: u64) -> (Duration, Duration) {
    let layout = WorldLayout::new(workers, 1);
    let world = GaspiWorld::new(GaspiConfig::new(layout.total()).with_seed(99));
    let cfg = FtConfig::builder(layout)
        .max_iters(iters)
        .checkpoint_every(0)
        .detector(ft_core::DetectorConfig {
            scan_interval: if fd_on {
                Duration::from_millis(30)
            } else {
                Duration::from_secs(3600)
            },
            ..Default::default()
        })
        .build()
        .unwrap();
    let mc = MiniConfig {
        work: Duration::from_micros(200),
        inline_kind: kind,
        inline_interval: Duration::from_millis(30),
        ..MiniConfig::default()
    };
    let report =
        run_ft_job(&world, cfg, FaultSchedule::none(), move |ctx| MiniApp::new(ctx, mc.clone()));
    let summaries = report.worker_summaries();
    assert_eq!(summaries.len(), workers as usize);
    let total = ft_telemetry::OverheadReport::from_log(&report.events).total;
    assert!(!total.is_zero(), "every worker must have finished");
    let stolen = summaries.iter().map(|(_, s)| s.inline_overhead).max().unwrap_or(Duration::ZERO);
    (total, stolen)
}

fn main() {
    let workers: u32 = std::env::var("ABL_WORKERS").ok().and_then(|s| s.parse().ok()).unwrap_or(16);
    let iters: u64 = std::env::var("ABL_ITERS").ok().and_then(|s| s.parse().ok()).unwrap_or(400);
    println!(
        "Detector ablation: {workers} workers, {iters} iterations, failure-free, 30 ms scan interval\n"
    );

    let (t_none_nofd, _) = run_with(InlineKind::None, false, workers, iters);
    let (t_fd, _) = run_with(InlineKind::None, true, workers, iters);
    let (t_a2a, stolen_a2a) = run_with(InlineKind::AllToAll, false, workers, iters);
    let (t_ring, stolen_ring) = run_with(InlineKind::NeighborRing, false, workers, iters);

    let base = t_none_nofd.as_secs_f64();
    let pct = |t: Duration| 100.0 * (t.as_secs_f64() - base) / base;
    let mut t =
        Table::new(&["detector design", "runtime", "overhead vs none", "time stolen from worker"]);
    t.row(vec!["none (no detection)".into(), format!("{:.3}s", base), "—".into(), "—".into()]);
    t.row(vec![
        "dedicated FD process (paper)".into(),
        format!("{:.3}s", t_fd.as_secs_f64()),
        format!("{:+.2}%", pct(t_fd)),
        "0 (runs on a spare)".into(),
    ]);
    t.row(vec![
        "all-to-all inline (rejected)".into(),
        format!("{:.3}s", t_a2a.as_secs_f64()),
        format!("{:+.2}%", pct(t_a2a)),
        format!("{:.3}s", stolen_a2a.as_secs_f64()),
    ]);
    t.row(vec![
        "neighbor-ring inline (rejected)".into(),
        format!("{:.3}s", t_ring.as_secs_f64()),
        format!("{:+.2}%", pct(t_ring)),
        format!("{:.3}s", stolen_ring.as_secs_f64()),
    ]);
    println!("{}", t.render());
    println!(
        "paper: dedicated FD adds no worker overhead; inline probing costs 1–21 % (Kharbas et al.)"
    );

    assert!(
        stolen_a2a > stolen_ring,
        "all-to-all must steal more worker time than the neighbor ring"
    );
}
