//! Micro-benchmark: synchronous vs. split-phase (overlapped) vs.
//! overlapped+threaded per-iteration spMVM, on the full distributed
//! stack (negotiated plan, one-sided halo exchange, recovery driver —
//! with no faults scheduled).
//!
//! The three modes run the *same* job; only the step body differs:
//!
//! * `sync`       — `exchange → spmv` (the pre-split-phase loop),
//! * `overlap`    — `post → spmv_local → wait → spmv_remote_add`,
//! * `overlap+mt` — the same with the row-blocked threaded kernels.
//!
//! Reported per mode: per-iteration wall time (max across ranks) and the
//! merged `spmv_overlap` counter family (posts, exchanges, overlap vs.
//! stall time, overlap efficiency), which also goes into the JSON report.
//!
//! On top of the job modes, a **kernel sweep** times every raw spMVM
//! variant — {CSR, SELL-C-σ} × {seq, threaded, blocked, simd,
//! simd+threaded} — on the same graphene-sparsity matrix in one process,
//! reporting sustained GFLOP/s per variant (2·nnz flops per product).
//! The JSON schema is `gaspi-ft/spmv-overlap/v2`: v1 plus the `kernels`
//! section (entries carry `variant` + `gflops`), per-mode `gflops`, the
//! machine's `cores` (CI only enforces SIMD ≥ scalar on ≥ 4 cores), and
//! the build's default `kernel_policy`.
//!
//! Run: `cargo bench -p ft-bench --bench micro_spmv_overlap`
//! Environment: `SPMV_OVERLAP_ITERS` (default 200), `SPMV_OVERLAP_WORKERS`
//! (default 3) scale the job; `FT_SPMV_SMOKE=1` shrinks both the job and
//! the sweep for CI smoke runs.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use ft_bench::table::Table;
use ft_cluster::FaultSchedule;
use ft_core::{run_ft_job, FtApp, FtConfig, FtCtx, FtError, FtResult, RecoveryPlan, WorldLayout};
use ft_gaspi::{GaspiConfig, GaspiWorld, SegId, Timeout};
use ft_matgen::graphene::Graphene;
use ft_matgen::RowGen;
use ft_sparse::{
    det_allreduce_sum, CommPlan, Csr, DistMatrix, HaloStats, KernelPolicy, KernelStats,
    RowPartition, SellCSigma, SpmvComm,
};
use ft_telemetry::{Json, TelemetrySnapshot};

const SEG_HALO: SegId = 1;
const SEG_STAGE: SegId = 2;
const HALO_QUEUE: u16 = 1;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Sync,
    Overlap,
    OverlapThreaded,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Sync => "sync",
            Mode::Overlap => "overlap",
            Mode::OverlapThreaded => "overlap+mt",
        }
    }
}

#[derive(Debug, Clone)]
struct ModeSummary {
    wall_per_iter_ns: u64,
    halo: HaloStats,
    checksum: f64,
}

struct SpmvBench {
    gen: Arc<Graphene>,
    mode: Mode,
    threads: usize,
    dm: Option<DistMatrix>,
    comm: Option<SpmvComm>,
    x: Vec<f64>,
    halo: Vec<f64>,
    started: Option<Instant>,
    elapsed_ns: u64,
    iters: u64,
    checksum: f64,
}

impl SpmvBench {
    fn new(gen: Arc<Graphene>, mode: Mode, threads: usize) -> Self {
        Self {
            gen,
            mode,
            threads,
            dm: None,
            comm: None,
            x: Vec::new(),
            halo: Vec::new(),
            started: None,
            elapsed_ns: 0,
            iters: 0,
            checksum: 0.0,
        }
    }
}

impl FtApp for SpmvBench {
    type Summary = ModeSummary;

    fn setup(&mut self, ctx: &FtCtx) -> FtResult<()> {
        let part = RowPartition::new(self.gen.dim(), ctx.num_app_ranks());
        let me = ctx.app_rank();
        let needed = DistMatrix::needed_columns(self.gen.as_ref(), &part, me);
        let plan = CommPlan::receives_from_needs(me, part.parts(), &needed)
            .negotiate(&ctx.proc, &|a| ctx.gaspi_of(a), part.range(me).start, Timeout::Ms(30_000))
            .map_err(FtError::Gaspi)?;
        let dm = DistMatrix::assemble(self.gen.as_ref(), part, me, plan);
        let comm = SpmvComm::new(&ctx.proc, &dm.plan, SEG_HALO, SEG_STAGE, HALO_QUEUE)?;
        self.x = part.range(me).map(|i| ((i as f64) * 0.43).sin()).collect();
        self.dm = Some(dm);
        self.comm = Some(comm);
        ctx.barrier_ft()
    }

    fn join_as_rescue(&mut self, _ctx: &FtCtx) -> FtResult<()> {
        unreachable!("no faults are scheduled in this benchmark")
    }

    fn step(&mut self, ctx: &FtCtx, iter: u64) -> FtResult<bool> {
        let dm = self.dm.as_ref().expect("step before setup");
        let comm = self.comm.as_ref().expect("step before setup");
        let t0 = Instant::now();
        self.started.get_or_insert(t0);
        let tag = SpmvComm::tag_for_iter(iter);
        let mut y = vec![0.0; self.x.len()];
        match self.mode {
            Mode::Sync => {
                comm.exchange(ctx, &dm.plan, &self.x, tag, &mut self.halo)?;
                dm.spmv(&self.x, &self.halo, &mut y);
            }
            Mode::Overlap => {
                let pending = comm.post(ctx, &dm.plan, &self.x, tag)?;
                dm.spmv_local(&self.x, &mut y);
                comm.wait(ctx, &dm.plan, pending, &mut self.halo)?;
                dm.spmv_remote_add(&self.halo, &mut y);
            }
            Mode::OverlapThreaded => {
                let pending = comm.post(ctx, &dm.plan, &self.x, tag)?;
                dm.spmv_local_threaded(&self.x, &mut y, self.threads);
                comm.wait(ctx, &dm.plan, pending, &mut self.halo)?;
                dm.spmv_remote_add_threaded(&self.halo, &mut y, self.threads);
            }
        }
        // A power-iteration-flavored feedback keeps the product live and
        // the reduction below doubles as the inter-iteration barrier that
        // keeps split-phase halo buffers race-free.
        let norm = det_allreduce_sum(ctx, y.iter().map(|v| v * v).sum())?.sqrt().max(1e-300);
        for (xi, yi) in self.x.iter_mut().zip(&y) {
            *xi = yi / norm;
        }
        self.checksum = norm;
        self.iters = iter + 1;
        self.elapsed_ns = self.started.map_or(0, |s| s.elapsed().as_nanos() as u64);
        Ok(false)
    }

    fn checkpoint(&mut self, _ctx: &FtCtx, _iter: u64) -> FtResult<()> {
        Ok(()) // checkpoint_every = 0; never called
    }

    fn restore(&mut self, _ctx: &FtCtx) -> FtResult<u64> {
        unreachable!("no faults are scheduled in this benchmark")
    }

    fn rewire(&mut self, _ctx: &FtCtx, _plan: &RecoveryPlan) -> FtResult<()> {
        Ok(())
    }

    fn finalize(&mut self, _ctx: &FtCtx) -> FtResult<ModeSummary> {
        let halo = self.comm.as_ref().map(|c| c.stats()).unwrap_or_default();
        let wall_per_iter_ns = self.elapsed_ns.checked_div(self.iters).unwrap_or(0);
        Ok(ModeSummary { wall_per_iter_ns, halo, checksum: self.checksum })
    }
}

struct ModeResult {
    mode: Mode,
    wall_per_iter_ns: u64,
    halo: HaloStats,
    checksum: f64,
}

fn run_mode(
    world: &GaspiWorld,
    workers: u32,
    iters: u64,
    gen: &Arc<Graphene>,
    mode: Mode,
) -> ModeResult {
    let layout = WorldLayout::new(workers, 1);
    let cfg = FtConfig::builder(layout).checkpoint_every(0).max_iters(iters).build().unwrap();
    let gen = Arc::clone(gen);
    let report = run_ft_job(world, cfg, FaultSchedule::none(), move |_ctx| {
        SpmvBench::new(Arc::clone(&gen), mode, 2)
    });
    let summaries = report.worker_summaries();
    assert_eq!(summaries.len(), workers as usize, "all ranks must finish");
    let mut halo = HaloStats::default();
    let mut wall = 0u64;
    let mut checksum = 0.0f64;
    for (_, s) in summaries {
        halo.merge(&s.halo);
        wall = wall.max(s.wall_per_iter_ns);
        checksum = s.checksum; // identical on every rank (deterministic reduction)
    }
    ModeResult { mode, wall_per_iter_ns: wall, halo, checksum }
}

struct KernelResult {
    variant: &'static str,
    stats: KernelStats,
}

/// Time every raw kernel variant on the full (undistributed) graphene
/// matrix: sustained GFLOP/s at the paper's sparsity, one process, no
/// communication. The variants that thread use `threads` workers.
fn kernel_sweep(gen: &Graphene, iters: u64, threads: usize) -> (Vec<KernelResult>, usize) {
    let n = gen.dim();
    let rows: Vec<Vec<(u32, f64)>> = (0..n)
        .map(|i| gen.row_vec(i).into_iter().map(|e| (e.col as u32, e.val)).collect())
        .collect();
    let a = Csr::from_rows(&rows, n as usize);
    let s = SellCSigma::from_csr(&a, 32, 128);
    let flops_per = 2 * a.nnz() as u64;
    let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.43).sin()).collect();
    type Kernel<'m> = (&'static str, Box<dyn Fn(&[f64], &mut [f64]) + 'm>);
    let variants: Vec<Kernel> = vec![
        ("csr_seq", Box::new(|x, y| a.spmv(x, y))),
        ("csr_threaded", Box::new(|x, y| a.spmv_threaded(x, y, threads))),
        ("csr_blocked", Box::new(|x, y| a.spmv_blocked(x, y))),
        ("csr_simd", Box::new(|x, y| a.spmv_simd(x, y))),
        ("csr_simd_threaded", Box::new(|x, y| a.spmv_simd_threaded(x, y, threads))),
        ("sell_seq", Box::new(|x, y| s.spmv(x, y))),
        ("sell_threaded", Box::new(|x, y| s.spmv_threaded(x, y, threads))),
        ("sell_simd", Box::new(|x, y| s.spmv_simd(x, y))),
        ("sell_simd_threaded", Box::new(|x, y| s.spmv_simd_threaded(x, y, threads))),
    ];
    let mut out = Vec::new();
    let mut y = vec![0.0; n as usize];
    for (variant, kernel) in &variants {
        // Warm caches (and fault in the SELL chunk maps) before timing.
        for _ in 0..3 {
            kernel(black_box(&x), black_box(&mut y));
        }
        let t0 = Instant::now();
        for _ in 0..iters {
            kernel(black_box(&x), black_box(&mut y));
        }
        let kernel_ns = t0.elapsed().as_nanos() as u64;
        out.push(KernelResult {
            variant,
            stats: KernelStats { spmvs: iters, kernel_ns, flops: flops_per * iters },
        });
    }
    (out, a.nnz())
}

fn main() {
    let smoke = std::env::var("FT_SPMV_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let iters: u64 = std::env::var("SPMV_OVERLAP_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 40 } else { 200 });
    let workers: u32 =
        std::env::var("SPMV_OVERLAP_WORKERS").ok().and_then(|s| s.parse().ok()).unwrap_or(3);
    let sweep_iters: u64 = if smoke { 60 } else { 400 };
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let gen = Arc::new(Graphene::new(64, 48).with_nnn(-0.1));
    println!(
        "spMVM overlap: graphene 64x48 ({} rows) on {workers} workers, {iters} iterations per mode\n",
        gen.dim()
    );

    // Kernel sweep first: raw per-variant GFLOP/s, no communication.
    eprintln!("running: kernel sweep ({sweep_iters} products per variant) ...");
    let (kernels, global_nnz) = kernel_sweep(&gen, sweep_iters, 2.min(cores));
    let mut kt = Table::new(&["variant", "ns/spmv", "GFLOP/s"]);
    let mut kernel_totals = KernelStats::default();
    for k in &kernels {
        kernel_totals.merge(&k.stats);
        kt.row(vec![
            k.variant.to_string(),
            (k.stats.kernel_ns / k.stats.spmvs.max(1)).to_string(),
            format!("{:.3}", k.stats.gflops()),
        ]);
    }
    println!("{}", kt.render());

    let mut t = Table::new(&[
        "mode",
        "wall/iter",
        "exchanges",
        "posts",
        "overlap",
        "wait stall",
        "efficiency",
    ]);
    let mut results = Vec::new();
    for mode in [Mode::Sync, Mode::Overlap, Mode::OverlapThreaded] {
        eprintln!("running: {} ...", mode.name());
        // Fresh world per mode so transport counters don't bleed across.
        // One spare on top of the workers: the driver wants a standby
        // fault detector even in a fault-free run.
        let world = GaspiWorld::new(GaspiConfig::deterministic(workers + 1));
        let r = run_mode(&world, workers, iters, &gen, mode);
        t.row(vec![
            r.mode.name().to_string(),
            format!("{:.1} µs", r.wall_per_iter_ns as f64 / 1e3),
            r.halo.exchanges.to_string(),
            r.halo.posts.to_string(),
            format!("{:.3} ms", r.halo.overlap_ns as f64 / 1e6),
            format!("{:.3} ms", r.halo.wait_stall_ns as f64 / 1e6),
            format!("{:.1}%", 100.0 * r.halo.overlap_efficiency()),
        ]);
        if mode == Mode::OverlapThreaded {
            // Write the unified counter report from the last world, with
            // the merged halo stats as the spmv_overlap family and the
            // sweep totals as the spmv_kernel family.
            let counters = TelemetrySnapshot::of_world(&world)
                .with_spmv_overlap(r.halo)
                .with_spmv_kernel(kernel_totals);
            let mode_flops = 2 * global_nnz as u64; // one distributed product
            let doc = Json::obj([
                ("schema", Json::Str("gaspi-ft/spmv-overlap/v2".into())),
                ("workers", Json::num_u64(u64::from(workers))),
                ("iters", Json::num_u64(iters)),
                ("cores", Json::num_u64(cores as u64)),
                ("kernel_policy", Json::Str(format!("{:?}", KernelPolicy::auto()))),
                (
                    "modes",
                    Json::Obj(
                        results
                            .iter()
                            .chain([&r])
                            .map(|m: &ModeResult| {
                                let gflops =
                                    mode_flops as f64 / (m.wall_per_iter_ns as f64).max(1.0);
                                (
                                    m.mode.name().to_string(),
                                    Json::obj([
                                        ("wall_per_iter_ns", Json::num_u64(m.wall_per_iter_ns)),
                                        ("overlap_ns", Json::num_u64(m.halo.overlap_ns)),
                                        ("wait_stall_ns", Json::num_u64(m.halo.wait_stall_ns)),
                                        ("gflops", Json::Num(gflops)),
                                    ]),
                                )
                            })
                            .collect(),
                    ),
                ),
                (
                    "kernels",
                    Json::Obj(
                        kernels
                            .iter()
                            .map(|k| {
                                (
                                    k.variant.to_string(),
                                    Json::obj([
                                        ("variant", Json::Str(k.variant.into())),
                                        ("gflops", Json::Num(k.stats.gflops())),
                                        ("spmvs", Json::num_u64(k.stats.spmvs)),
                                        ("kernel_ns", Json::num_u64(k.stats.kernel_ns)),
                                        ("flops", Json::num_u64(k.stats.flops)),
                                    ]),
                                )
                            })
                            .collect(),
                    ),
                ),
                ("counters", counters.to_json()),
            ]);
            ft_bench::report::write_report("spmv_overlap.json", &doc);
        }
        results.push(r);
    }
    println!("{}", t.render());

    let sync = &results[0];
    let overlap = &results[1];
    let threaded = &results[2];
    assert!(
        (sync.checksum - overlap.checksum).abs() == 0.0
            && (sync.checksum - threaded.checksum).abs() == 0.0,
        "all modes must produce bitwise-identical iterates: {} / {} / {}",
        sync.checksum,
        overlap.checksum,
        threaded.checksum
    );
    let speedup = |a: &ModeResult, b: &ModeResult| {
        a.wall_per_iter_ns as f64 / (b.wall_per_iter_ns as f64).max(1.0)
    };
    println!(
        "overlap vs sync: {:.2}x; overlap+mt vs sync: {:.2}x",
        speedup(sync, overlap),
        speedup(sync, threaded)
    );
    if overlap.wall_per_iter_ns <= sync.wall_per_iter_ns {
        println!("OK: overlapped per-iteration wall time ≤ synchronous");
    } else {
        // Not a hard assert: on a loaded machine the simulated transport
        // is so fast that scheduling noise can dominate the comparison.
        println!(
            "WARNING: overlapped ({} ns) > synchronous ({} ns) this run",
            overlap.wall_per_iter_ns, sync.wall_per_iter_ns
        );
    }
    let gflops_of = |variant: &str| {
        kernels.iter().find(|k| k.variant == variant).map_or(0.0, |k| k.stats.gflops())
    };
    for (simd, scalar) in [("csr_simd", "csr_seq"), ("sell_simd", "sell_seq")] {
        let (gs, gq) = (gflops_of(simd), gflops_of(scalar));
        if gs >= gq {
            println!("OK: {simd} ({gs:.3} GFLOP/s) ≥ {scalar} ({gq:.3} GFLOP/s)");
        } else {
            // Informational here; CI enforces this only on ≥ 4-core
            // runners, where the comparison is stable.
            println!("WARNING: {simd} ({gs:.3} GFLOP/s) < {scalar} ({gq:.3} GFLOP/s) this run");
        }
    }
}
