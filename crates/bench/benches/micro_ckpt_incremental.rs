//! Micro-benchmark: incremental (chunk-deduplicated) vs. full-image
//! checkpointing of an evolving Lanczos state.
//!
//! A sequential Lanczos recurrence on a 1-D Laplacian grows the exact
//! state the paper checkpoints — two dense vectors that change wholesale
//! every iteration plus an append-only α/β history. The state is encoded
//! with the chunk-aligned [`ft_solver::LanczosState::encode`] layout and
//! committed once per epoch to two checkpointers over the same payloads:
//!
//! * `incremental` — `full_every(8)`: commits write only dirty chunks +
//!   a manifest; every 8th version is a self-contained full commit that
//!   bounds the restore chain,
//! * `full baseline` — `full_every(1)`: every commit rewrites the whole
//!   image, which is what the pre-incremental pipeline always did.
//!
//! The headline metric is the **final-pair dirty ratio**: bytes written
//! by the *last incremental* commit divided by the payload size at that
//! epoch. It is taken at the end of the run because that is when the
//! α/β history (the clean, append-only part) is largest relative to the
//! vectors — i.e. it measures the steady state the dedup is for, not the
//! warm-up where almost everything is dirty. The run asserts it ≤ 0.40
//! (the acceptance bound) and that both checkpointers restore the final
//! payload bit-exactly.
//!
//! Run: `cargo bench -p ft-bench --bench micro_ckpt_incremental`
//! Environment: `FT_CKPT_INC_SMOKE=1` shrinks the run (8 epochs × 200
//! iterations) for CI; `FT_CKPT_INC_EPOCHS` / `FT_CKPT_INC_ITERS`
//! override either dimension explicitly.

use std::time::Duration;

use ft_bench::table::Table;
use ft_checkpoint::{Checkpointer, CheckpointerConfig, CkptStats, CopyPolicy};
use ft_gaspi::{GaspiConfig, GaspiWorld};
use ft_solver::LanczosState;
use ft_telemetry::{Json, TelemetrySnapshot};

const DIM: usize = 256;
const CHUNK: usize = 1024;
const FULL_EVERY: u64 = 8;
const T: Duration = Duration::from_secs(30);

/// One sequential Lanczos step on the 1-D Laplacian stencil
/// `w[i] = 2 v[i] − v[i−1] − v[i+1]` (the simplest symmetric operator
/// that keeps the recurrence — and hence the α/β history — nontrivial).
fn step(s: &mut LanczosState) {
    let n = s.v.len();
    let mut w = vec![0.0; n];
    for (i, wi) in w.iter_mut().enumerate() {
        let left = if i > 0 { s.v[i - 1] } else { 0.0 };
        let right = if i + 1 < n { s.v[i + 1] } else { 0.0 };
        *wi = 2.0 * s.v[i] - left - right;
    }
    let alpha: f64 = w.iter().zip(&s.v).map(|(a, b)| a * b).sum();
    let beta_prev = s.betas.last().copied().unwrap_or(0.0);
    for (wi, (vi, pi)) in w.iter_mut().zip(s.v.iter().zip(&s.v_prev)) {
        *wi -= alpha * vi + beta_prev * pi;
    }
    let beta = w.iter().map(|x| x * x).sum::<f64>().sqrt();
    s.alphas.push(alpha);
    s.betas.push(beta);
    std::mem::swap(&mut s.v_prev, &mut s.v);
    if beta > 0.0 {
        for (vi, wi) in s.v.iter_mut().zip(&w) {
            *vi = wi / beta;
        }
    } else {
        s.v.iter_mut().for_each(|x| *x = 0.0);
    }
    s.iter += 1;
}

/// Pipeline bytes a commit wrote: dirty chunks + the manifest.
fn written(d: &CkptStats) -> u64 {
    d.chunk_bytes + d.manifest_bytes
}

struct Epoch {
    version: u64,
    full: bool,
    payload_bytes: u64,
    written_bytes: u64,
    ratio: f64,
}

fn main() {
    let smoke = std::env::var_os("FT_CKPT_INC_SMOKE").is_some_and(|v| v != "0");
    let (def_epochs, def_iters) = if smoke { (8u64, 200u64) } else { (16u64, 400u64) };
    let epochs: u64 =
        std::env::var("FT_CKPT_INC_EPOCHS").ok().and_then(|s| s.parse().ok()).unwrap_or(def_epochs);
    let iters_per_epoch: u64 =
        std::env::var("FT_CKPT_INC_ITERS").ok().and_then(|s| s.parse().ok()).unwrap_or(def_iters);
    println!(
        "incremental checkpoint: Lanczos dim {DIM}, {epochs} epochs x {iters_per_epoch} iters, \
         chunk {CHUNK} B, full every {FULL_EVERY}{}\n",
        if smoke { " (smoke)" } else { "" }
    );

    // Two simulated nodes: rank 0 writes, node 2 holds the replicas.
    let world = GaspiWorld::new(GaspiConfig::deterministic(2));
    let p0 = world.proc_handle(0);
    let cfg_inc = CheckpointerConfig::builder(11)
        .chunk_size(CHUNK)
        .full_every(FULL_EVERY)
        .build()
        .expect("valid config");
    let cfg_full = CheckpointerConfig::builder(12)
        .chunk_size(CHUNK)
        .full_every(1)
        .build()
        .expect("valid config");
    let ck_inc = Checkpointer::new(&p0, cfg_inc, None);
    let ck_full = Checkpointer::new(&p0, cfg_full, None);

    let mut state = LanczosState::init(0, DIM, 42);
    let norm = state.v.iter().map(|x| x * x).sum::<f64>().sqrt();
    state.v.iter_mut().for_each(|x| *x /= norm);

    let mut rows = Vec::new();
    let mut last = ck_inc.stats();
    let mut last_payload = Vec::new();
    for version in 1..=epochs {
        for _ in 0..iters_per_epoch {
            step(&mut state);
        }
        let payload = state.encode();
        ck_inc.commit(version, payload.clone(), CopyPolicy::Replicate);
        ck_full.commit(version, payload.clone(), CopyPolicy::Replicate);
        let now = ck_inc.stats();
        let d = now.since(&last);
        last = now;
        rows.push(Epoch {
            version,
            full: d.full_commits > 0,
            payload_bytes: payload.len() as u64,
            written_bytes: written(&d),
            ratio: written(&d) as f64 / payload.len() as f64,
        });
        last_payload = payload;
    }
    assert!(ck_inc.drain(T) && ck_full.drain(T), "replication must drain");

    let mut t = Table::new(&["version", "commit", "payload", "written", "ratio"]);
    for e in &rows {
        t.row(vec![
            e.version.to_string(),
            if e.full { "full" } else { "incremental" }.to_string(),
            format!("{} B", e.payload_bytes),
            format!("{} B", e.written_bytes),
            format!("{:.3}", e.ratio),
        ]);
    }
    println!("{}", t.render());

    let inc_rows: Vec<&Epoch> = rows.iter().filter(|e| !e.full).collect();
    let final_inc =
        inc_rows.last().expect("at least one incremental commit (epochs > full_every?)");
    let mean_ratio = inc_rows.iter().map(|e| e.ratio).sum::<f64>() / inc_rows.len() as f64;
    let inc_total = ck_inc.stats();
    let full_total = ck_full.stats();
    let pipeline_vs_baseline = written(&inc_total) as f64 / written(&full_total).max(1) as f64;
    println!(
        "final incremental dirty ratio (v{}): {:.3}; mean over {} incremental commits: {:.3}",
        final_inc.version,
        final_inc.ratio,
        inc_rows.len(),
        mean_ratio
    );
    println!(
        "pipeline bytes: incremental {} B vs full baseline {} B ({:.1}% of baseline); \
         replica copy bytes {} vs {}",
        written(&inc_total),
        written(&full_total),
        100.0 * pipeline_vs_baseline,
        inc_total.copy_bytes,
        full_total.copy_bytes,
    );

    // Both pipelines must reassemble the final image bit-exactly.
    for (name, ck) in [("incremental", &ck_inc), ("full", &ck_full)] {
        let r = ck.restore_latest(0, T).hit().unwrap_or_else(|| panic!("{name} restore"));
        assert_eq!(r.version, epochs, "{name}: latest version");
        assert_eq!(r.data, last_payload, "{name}: restored image must be bit-exact");
    }
    // The acceptance bound: adjacent-epoch dirty chunks are ≤ 40% of the
    // full image once the history dominates the payload.
    assert!(
        final_inc.ratio <= 0.40,
        "final incremental dirty ratio {:.3} exceeds the 0.40 acceptance bound",
        final_inc.ratio
    );
    println!("OK: final incremental dirty ratio {:.3} <= 0.40", final_inc.ratio);

    let counters = TelemetrySnapshot::of_world(&world).with_ckpt(inc_total);
    let doc = Json::obj([
        ("schema", Json::Str("gaspi-ft/ckpt-incremental/v1".into())),
        ("dim", Json::num_u64(DIM as u64)),
        ("epochs", Json::num_u64(epochs)),
        ("iters_per_epoch", Json::num_u64(iters_per_epoch)),
        ("chunk_size", Json::num_u64(CHUNK as u64)),
        ("full_every", Json::num_u64(FULL_EVERY)),
        ("smoke", Json::Bool(smoke)),
        (
            "epochs_detail",
            Json::Arr(
                rows.iter()
                    .map(|e| {
                        Json::obj([
                            ("version", Json::num_u64(e.version)),
                            ("full", Json::Bool(e.full)),
                            ("payload_bytes", Json::num_u64(e.payload_bytes)),
                            ("written_bytes", Json::num_u64(e.written_bytes)),
                            ("ratio", Json::Num(e.ratio)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("final_incremental_ratio", Json::Num(final_inc.ratio)),
        ("mean_incremental_ratio", Json::Num(mean_ratio)),
        ("incremental_pipeline_bytes", Json::num_u64(written(&inc_total))),
        ("full_baseline_pipeline_bytes", Json::num_u64(written(&full_total))),
        ("pipeline_vs_baseline", Json::Num(pipeline_vs_baseline)),
        ("counters", counters.to_json()),
    ]);
    ft_bench::report::write_report("ckpt_incremental.json", &doc);
}
