//! **Ablation (paper §VI discussion)** — checkpoint-interval sweep.
//!
//! "The redo-work time constitutes a major part of the total overhead.
//! The average time for redo-work is the time between two successive
//! checkpoints. Owing to a good checkpoint strategy with very low
//! overhead, the checkpoint frequency can be increased which will lead to
//! the reduction of redo-work time."
//!
//! This sweep runs the FT-Lanczos with one injected failure at a fixed
//! iteration under different checkpoint intervals and shows redo-work
//! shrinking with the interval while the failure-free checkpoint cost
//! stays negligible.
//!
//! Run: `cargo bench -p ft-bench --bench ablation_checkpoint_interval`

use ft_bench::scenario::{run_scenario, Kills, Scenario, Workload};
use ft_bench::table::Table;

fn main() {
    let intervals = [25u64, 50, 100, 200, 300];
    let kill_iter = 555; // fixed failure point, redo = kill_iter % interval
    let w = Workload::default();
    println!(
        "Checkpoint-interval sweep: {} workers, {} iterations, kill at iteration {kill_iter}\n",
        w.workers, w.iters
    );

    let mut t =
        Table::new(&["interval", "total", "redo-work", "re-init", "detect", "expected redo iters"]);
    let mut redos = Vec::new();
    for &interval in &intervals {
        eprintln!("interval {interval} ...");
        let w = Workload { checkpoint_every: interval, ..Workload::default() };
        let sc = Scenario {
            name: "1 fail",
            health_check: true,
            checkpointing: true,
            kills: Kills::AtIterations(vec![(2, kill_iter)]),
            fd_threads: 1,
        };
        let r = run_scenario(&w, &sc);
        assert!(r.consistent, "run with interval {interval} must stay consistent");
        t.row(vec![
            interval.to_string(),
            format!("{:.3}s", r.total.as_secs_f64()),
            format!("{:.3}s", r.redo.as_secs_f64()),
            format!("{:.3}s", r.reinit.as_secs_f64()),
            format!("{:.3}s", r.detect.as_secs_f64()),
            (kill_iter % interval).to_string(),
        ]);
        redos.push(r.redo);
    }
    println!("{}", t.render());
    println!("paper: redo-work ≈ time since the last checkpoint; denser checkpoints shrink it");

    // Shape: redo at the densest interval is below redo at the sparsest.
    let densest = redos.first().unwrap();
    let sparsest = redos.last().unwrap();
    assert!(
        densest < sparsest,
        "denser checkpoints must reduce redo-work: {densest:?} vs {sparsest:?}"
    );
}
