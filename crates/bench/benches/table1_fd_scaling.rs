//! **Table I** — "The average ping scan time of the FD process and the
//! failure detection time (and standard deviation using 10 runs) with
//! respect to the number of nodes."
//!
//! Paper values (256-node cluster, 3 s scan interval, ~1 ms/ping):
//!
//! | nodes              |     8 |    16 |    32 |    64 |   128 |   256 |
//! |--------------------|-------|-------|-------|-------|-------|-------|
//! | avg ping scan [s]  | 0.010 | 0.018 | 0.036 | 0.067 | 0.129 | 0.255 |
//! | detect + ack [s]   | 4.9   | 5.3   | 5.5   | 4.3   | 5.7   | 5.3   |
//!
//! Shape: scan time grows ~linearly with the node count; detection+ack is
//! roughly flat (dominated by scan-interval/2 + scan + ack). The same
//! must hold on the simulated cluster at its scaled clock.
//!
//! This harness extends the sweep past the paper's 256-node cluster to
//! 4096 ranks (the sharded transport's design point) and adds a third
//! measured column: the epoch-batched scan (`glo_health_chk_batched`,
//! one fan-out posting per scan instead of one blocking round trip per
//! node). The sequential scan stays the paper-faithful Listing 1 loop and
//! must stay ~linear; the batched scan overlaps all pings in flight and
//! grows far slower. Sizes past 256 have no paper reference values and
//! print "—" in those columns.
//!
//! Run: `cargo bench -p ft-bench --bench table1_fd_scaling`
//! Environment: `T1_RUNS` (default 10), `T1_MAX_NODES` (default 4096),
//! `T1_MAX_DETECT_NODES` (default 64).

use std::time::Duration;

use ft_bench::fdscale::{measure_detection, measure_scan_with};
use ft_bench::stats::{fmt_mean_std, mean};
use ft_bench::table::Table;
use ft_telemetry::Json;

fn main() {
    let runs: usize = std::env::var("T1_RUNS").ok().and_then(|s| s.parse().ok()).unwrap_or(10);
    let max_nodes: u32 =
        std::env::var("T1_MAX_NODES").ok().and_then(|s| s.parse().ok()).unwrap_or(4096);
    // Detection runs spin up a full FT job per sample (N+2 live rank
    // threads each); cap their sweep separately so the harness stays
    // tractable on small machines. The scan sweep — the paper's linear
    // claim, now extended to 4096 — always goes to `max_nodes`.
    let max_detect: u32 =
        std::env::var("T1_MAX_DETECT_NODES").ok().and_then(|s| s.parse().ok()).unwrap_or(64);
    let scan_interval = Duration::from_millis(30); // paper: 3 s (scaled 100×)
    let sizes: Vec<u32> = [8u32, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096]
        .into_iter()
        .filter(|&n| n <= max_nodes)
        .collect();

    println!(
        "Table I on the simulated cluster: {runs} runs per point, scan interval {scan_interval:?} (paper: 3 s)\n"
    );
    let mut t = Table::new(&[
        "num. of nodes",
        "avg ping scan time",
        "batched scan time",
        "failure detect + ack time",
        "paper scan[s]",
        "paper detect[s]",
    ]);
    // Reference values exist only for the paper's 8..256 sweep; larger
    // sizes index past these arrays and print "—".
    let paper_scan = [0.010, 0.018, 0.036, 0.067, 0.129, 0.255];
    let paper_det = [4.9, 5.3, 5.5, 4.3, 5.7, 5.3];
    let mut scan_means = Vec::new();
    let mut batched_means = Vec::new();
    let mut det_means = Vec::new();
    let mut json_rows = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        eprintln!("measuring {n} nodes ...");
        let scans = measure_scan_with(n, runs, 7 + u64::from(n), false);
        let batched = measure_scan_with(n, runs, 7 + u64::from(n), true);
        let dets = if n <= max_detect {
            let dets = measure_detection(n, runs, scan_interval, 1000 + u64::from(n));
            assert!(
                dets.len() * 10 >= runs * 8,
                "at least 80% of detection runs must observe the failure ({}/{runs})",
                dets.len()
            );
            dets
        } else {
            Vec::new()
        };
        scan_means.push(mean(&scans));
        batched_means.push(mean(&batched));
        if !dets.is_empty() {
            det_means.push(mean(&dets));
        }
        t.row(vec![
            n.to_string(),
            fmt_mean_std(&scans),
            fmt_mean_std(&batched),
            if dets.is_empty() {
                "(skipped, see T1_MAX_DETECT_NODES)".into()
            } else {
                fmt_mean_std(&dets)
            },
            paper_scan.get(i).map_or_else(|| "—".into(), |v| format!("{v:.3}")),
            paper_det.get(i).map_or_else(|| "—".into(), |v| format!("{v:.1}")),
        ]);
        json_rows.push(Json::obj([
            ("nodes", Json::num_u64(u64::from(n))),
            ("scan_mean_s", Json::Num(mean(&scans).as_secs_f64())),
            ("scan_batched_mean_s", Json::Num(mean(&batched).as_secs_f64())),
            (
                "detect_ack_mean_s",
                if dets.is_empty() { Json::Null } else { Json::Num(mean(&dets).as_secs_f64()) },
            ),
            ("detect_runs", Json::num_u64(dets.len() as u64)),
        ]));
    }
    println!("{}", t.render());

    // Machine-readable Table I (detection latencies come from the
    // telemetry reporter's epoch timelines, see `fdscale`).
    let doc = Json::obj([("rows", Json::Arr(json_rows))]);
    ft_bench::report::write_report("table1_fd_scaling.json", &doc);

    // ---- shape checks -------------------------------------------------
    if sizes.len() >= 3 {
        let first = scan_means[0].as_secs_f64();
        let last = scan_means[scan_means.len() - 1].as_secs_f64();
        let factor = last / first;
        let nodes_factor = f64::from(sizes[sizes.len() - 1]) / f64::from(sizes[0]);
        println!(
            "shape checks:\n  scan time grew {factor:.1}× over a {nodes_factor:.0}× node increase (paper: ~linear, 25×)"
        );
        let dmin = det_means.iter().map(|d| d.as_secs_f64()).fold(f64::MAX, f64::min);
        let dmax = det_means.iter().map(|d| d.as_secs_f64()).fold(0.0, f64::max);
        println!(
            "  detection+ack spread: {:.3}s .. {:.3}s (paper: flat, 4.3–5.7 s at 3 s interval)",
            dmin, dmax
        );
        assert!(factor > nodes_factor / 4.0, "scan time must grow with node count");
        assert!(
            dmax < 20.0 * dmin.max(1e-3),
            "detection time must stay roughly flat across node counts"
        );
        // The batched scan overlaps every ping; at the largest size its
        // full scan must beat the sequential one-round-trip-per-node loop
        // outright (at 4096 ranks the gap is ~two orders of magnitude).
        if *sizes.last().unwrap() >= 256 {
            let bat_last = batched_means[batched_means.len() - 1].as_secs_f64();
            println!(
                "  batched scan at {} nodes: {bat_last:.4}s vs sequential {last:.4}s ({:.1}× faster)",
                sizes.last().unwrap(),
                last / bat_last.max(1e-9),
            );
            assert!(
                bat_last < last,
                "batched scan must beat the sequential loop at scale: {bat_last:.4}s vs {last:.4}s"
            );
        }
    }
}
