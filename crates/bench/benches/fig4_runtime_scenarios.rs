//! **Figure 4** — "Various runtime scenarios of Lanczos application on
//! 256 nodes. Each failure recovery cost ≈ 17 seconds."
//!
//! Reproduces the seven bars with their stacked components (computation,
//! redo-work, re-initialize, fault detection) on the simulated cluster.
//! Absolute numbers are simulation-scale; the *shape* claims checked at
//! the bottom are the paper's:
//!
//!  * checkpointing adds ≈0 overhead in failure-free runs (paper: 0.01 %),
//!  * the health check adds no further overhead,
//!  * each sequential failure adds ≈ one (detection + re-init + redo)
//!    quantum,
//!  * three *simultaneous* failures cost about as much as one.
//!
//! Run: `cargo bench -p ft-bench --bench fig4_runtime_scenarios`
//! Environment: `FIG4_WORKERS` (default 16) scales the job.

use ft_bench::scenario::{fig4_scenarios, run_scenario, Workload};
use ft_bench::table::Table;
use ft_telemetry::Json;

fn main() {
    let workers: u32 =
        std::env::var("FIG4_WORKERS").ok().and_then(|s| s.parse().ok()).unwrap_or(16);
    let w = Workload { workers, ..Workload::default() };
    println!(
        "Figure 4: FT-Lanczos on {} workers + {} spares, graphene {}x{} ({} rows), {} iterations, checkpoint every {}\n",
        w.workers,
        w.spares,
        w.lx,
        w.ly,
        2 * w.lx * w.ly,
        w.iters,
        w.checkpoint_every
    );

    let mut t = Table::new(&[
        "scenario",
        "total",
        "computation",
        "redo-work",
        "re-initialize",
        "fault detection",
        "recoveries",
        "consistent",
    ]);
    let mut results = Vec::new();
    for sc in fig4_scenarios(&w) {
        eprintln!("running: {} ...", sc.name);
        let r = run_scenario(&w, &sc);
        t.row(vec![
            r.name.to_string(),
            format!("{:.3}s", r.total.as_secs_f64()),
            format!("{:.3}s", r.compute.as_secs_f64()),
            format!("{:.3}s", r.redo.as_secs_f64()),
            format!("{:.3}s", r.reinit.as_secs_f64()),
            format!("{:.3}s", r.detect.as_secs_f64()),
            r.recoveries.to_string(),
            r.consistent.to_string(),
        ]);
        results.push(r);
    }
    println!("{}", t.render());

    // Machine-readable telemetry: one overhead report per scenario.
    let doc =
        Json::Obj(results.iter().map(|r| (r.name.to_string(), r.telemetry.to_json())).collect());
    ft_bench::report::write_report("fig4_runtime_scenarios.json", &doc);

    println!("paper reference (256 nodes): baseline ≈ 1310 s; +1 failure ≈ +64 s");
    println!("  of which detection ≈ 7 s, re-init ≈ 10 s, rest redo-work; 3 simultaneous");
    println!("  failures detected at the cost of a single detection (Fig. 4, §VI)\n");

    // ---- shape checks -------------------------------------------------
    let base = &results[0];
    let with_cp = &results[1];
    let with_hc = &results[2];
    let one = &results[3];
    let two = &results[4];
    let three = &results[5];
    let sim3 = &results[6];
    let pct = |a: &ft_bench::scenario::ScenarioResult, b: &ft_bench::scenario::ScenarioResult| {
        100.0 * (b.total.as_secs_f64() - a.total.as_secs_f64()) / a.total.as_secs_f64()
    };
    println!("shape checks:");
    println!("  checkpoint overhead vs baseline:    {:+.2}% (paper: +0.01%)", pct(base, with_cp));
    println!("  health-check overhead vs with-CP:   {:+.2}% (paper: ~0%)", pct(with_cp, with_hc));
    println!(
        "  per-failure overhead: 1 fail {:+.3}s, 2 fail {:+.3}s, 3 fail {:+.3}s (≈ proportional)",
        one.total.as_secs_f64() - with_hc.total.as_secs_f64(),
        two.total.as_secs_f64() - with_hc.total.as_secs_f64(),
        three.total.as_secs_f64() - with_hc.total.as_secs_f64(),
    );
    println!(
        "  detection cost: 3 sequential = {:.3}s vs 3 simultaneous = {:.3}s (paper: sim ≈ single)",
        three.detect.as_secs_f64(),
        sim3.detect.as_secs_f64(),
    );
    println!(
        "  1-fail re-init split: group rebuild (OHF2) {:.3}s + restore (OHF3) {:.3}s",
        one.telemetry.rebuild().as_secs_f64(),
        one.telemetry.restore().as_secs_f64(),
    );
    if let (Some(scan), Some(c)) = (&one.telemetry.scan, &one.telemetry.counters) {
        println!(
            "  1-fail counters: {} FD scans (mean {:.1} ms), {} local ckpt writes, {} neighbor copies, {} restores ({} B)",
            scan.scans,
            scan.mean.as_secs_f64() * 1e3,
            c.ckpt.local_writes,
            c.ckpt.neighbor_copies,
            c.ckpt.total_restores(),
            c.ckpt.restore_bytes,
        );
    }
    assert!(results.iter().all(|r| r.consistent), "every scenario must end consistent");
}
