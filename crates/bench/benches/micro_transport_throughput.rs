//! Micro-benchmark: raw transport throughput and delivery latency of the
//! in-memory network core, across rank counts and shard counts.
//!
//! This is the perf trajectory for the sharded timing wheel: for each
//! rank count the same message load is driven through a single-shard
//! transport (the pre-shard architecture: one heap, one lock, one
//! scheduler thread) and through the default sharded configuration.
//! Several sender threads post `Transport::send` round trips (empty
//! payload, a trivial endpoint, zero modeled latency) round-robin over
//! all destination ranks; every completion records its post-to-completion
//! wall latency. Reported per row: sustained msgs/sec and the p50/p99
//! delivery latency.
//!
//! With zero modeled latency the measurement is pure scheduler cost —
//! heap churn, lock contention, endpoint dispatch — which is exactly the
//! path that saturated first at 4096 ranks before sharding.
//!
//! Run: `cargo bench -p ft-bench --bench micro_transport_throughput`
//! Environment: `FT_TT_SMOKE=1` shrinks the run (64/512 ranks, fewer
//! messages) for CI; `FT_TT_MSGS` overrides the total message count per
//! row; `FT_NET_SHARDS` (read by the transport) overrides the sharded
//! configuration under test.
//!
//! JSON: `target/telemetry/transport_throughput.json`, schema
//! `gaspi-ft/transport-throughput/v1`.
//!
//! The ≥2x sharded-vs-baseline acceptance assertion only arms on a full
//! (non-smoke) run with ≥4 available cores and a sharded configuration
//! that actually differs from the baseline — on a single-core runner both
//! configurations collapse to one scheduler thread and the comparison
//! measures nothing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ft_bench::table::Table;
use ft_cluster::fault::FaultPlane;
use ft_cluster::time::LatencyModel;
use ft_cluster::topology::{Rank, Topology};
use ft_cluster::transport::{default_shards, Endpoint, QueueId, SimTransport, Transport};
use ft_telemetry::Json;

/// Trivial endpoint: the cheapest possible service so the measurement is
/// transport cost, not handler cost.
struct Sink;
impl Endpoint for Sink {
    fn handle(&self, _src: Rank, _queue: QueueId, _msg: &[u8]) -> Vec<u8> {
        Vec::new()
    }
}

/// Zero modeled latency: messages are due the moment they are posted.
fn zero_latency() -> LatencyModel {
    LatencyModel {
        base: Duration::ZERO,
        per_byte_ns: 0.0,
        jitter: 0.0,
        break_detect: Duration::from_micros(50),
    }
}

struct Row {
    ranks: u32,
    shards: usize,
    msgs: u64,
    wall: Duration,
    msgs_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

/// Drive `total` sends through a transport with `shards` shards over
/// `ranks` ranks and measure sustained throughput + latency percentiles.
fn run_config(ranks: u32, shards: usize, total: u64, senders: usize) -> Row {
    let fault = FaultPlane::new(Topology::one_per_node(ranks));
    let owner = SimTransport::start_sharded(zero_latency(), fault, 99, shards);
    let t = owner.handle();
    let sink = Arc::new(Sink);
    for r in 0..ranks {
        t.bind(r, Arc::clone(&sink) as Arc<dyn Endpoint>);
    }

    let per_sender = total / senders as u64;
    let total = per_sender * senders as u64;
    let lats: Arc<Vec<AtomicU64>> = Arc::new((0..total).map(|_| AtomicU64::new(0)).collect());
    let done = Arc::new(AtomicU64::new(0));

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for si in 0..senders {
            let t = t.clone();
            let lats = Arc::clone(&lats);
            let done = Arc::clone(&done);
            s.spawn(move || {
                let src = si as Rank % ranks;
                for j in 0..per_sender {
                    // Round-robin over all other ranks so every shard and
                    // every stream table sees traffic.
                    let mut dst = (j % u64::from(ranks)) as Rank;
                    if dst == src {
                        dst = (dst + 1) % ranks;
                    }
                    let idx = si as u64 * per_sender + j;
                    let lats = Arc::clone(&lats);
                    let done = Arc::clone(&done);
                    let posted = Instant::now();
                    t.send(
                        src,
                        dst,
                        (j % 4) as QueueId,
                        0,
                        Vec::new(),
                        Box::new(move |_, _| {
                            let ns = posted.elapsed().as_nanos() as u64;
                            lats[idx as usize].store(ns.max(1), Ordering::Relaxed);
                            done.fetch_add(1, Ordering::Release);
                        }),
                    );
                }
            });
        }
    });
    // All posted; wait for the wheel to drain.
    let deadline = Instant::now() + Duration::from_secs(120);
    while done.load(Ordering::Acquire) < total {
        assert!(Instant::now() < deadline, "transport stalled draining {total} msgs");
        std::thread::yield_now();
    }
    let wall = t0.elapsed();
    drop(owner);

    let mut ns: Vec<u64> = lats.iter().map(|a| a.load(Ordering::Relaxed)).collect();
    ns.sort_unstable();
    let pct = |p: f64| ns[((ns.len() - 1) as f64 * p) as usize] as f64 / 1000.0;
    Row {
        ranks,
        shards,
        msgs: total,
        wall,
        msgs_per_sec: total as f64 / wall.as_secs_f64(),
        p50_us: pct(0.50),
        p99_us: pct(0.99),
    }
}

fn main() {
    let smoke = std::env::var_os("FT_TT_SMOKE").is_some_and(|v| v != "0");
    let rank_counts: &[u32] = if smoke { &[64, 512] } else { &[64, 512, 4096] };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let default_total: u64 = if smoke { 40_000 } else { 200_000 };
    let total: u64 =
        std::env::var("FT_TT_MSGS").ok().and_then(|s| s.parse().ok()).unwrap_or(default_total);
    let senders = cores.clamp(2, 8);
    let sharded = default_shards();
    println!(
        "transport throughput: {total} msgs/row, {senders} senders, {cores} cores, \
         sharded config = {sharded} shard(s){}\n",
        if smoke { " (smoke)" } else { "" }
    );

    let mut rows: Vec<Row> = Vec::new();
    for &ranks in rank_counts {
        rows.push(run_config(ranks, 1, total, senders));
        if sharded != 1 {
            rows.push(run_config(ranks, sharded, total, senders));
        }
    }

    let mut table = Table::new(&["ranks", "shards", "msgs", "wall", "msgs/sec", "p50", "p99"]);
    for r in &rows {
        table.row(vec![
            r.ranks.to_string(),
            r.shards.to_string(),
            r.msgs.to_string(),
            format!("{:.1?}", r.wall),
            format!("{:.0}", r.msgs_per_sec),
            format!("{:.1} us", r.p50_us),
            format!("{:.1} us", r.p99_us),
        ]);
    }
    println!("{}", table.render());

    // Sharded-vs-baseline speedup per rank count (1.0 when only the
    // baseline ran).
    let speedup_at = |ranks: u32| -> f64 {
        let base = rows.iter().find(|r| r.ranks == ranks && r.shards == 1);
        let shrd = rows.iter().find(|r| r.ranks == ranks && r.shards != 1);
        match (base, shrd) {
            (Some(b), Some(s)) => s.msgs_per_sec / b.msgs_per_sec,
            _ => 1.0,
        }
    };
    for &ranks in rank_counts {
        println!("speedup at {ranks} ranks: {:.2}x", speedup_at(ranks));
    }

    let doc = Json::obj([
        ("schema", Json::Str("gaspi-ft/transport-throughput/v1".into())),
        ("smoke", Json::Bool(smoke)),
        ("cores", Json::num_u64(cores as u64)),
        ("senders", Json::num_u64(senders as u64)),
        ("sharded_config", Json::num_u64(sharded as u64)),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("ranks", Json::num_u64(u64::from(r.ranks))),
                            ("shards", Json::num_u64(r.shards as u64)),
                            ("msgs", Json::num_u64(r.msgs)),
                            ("wall_ms", Json::Num(r.wall.as_secs_f64() * 1e3)),
                            ("msgs_per_sec", Json::Num(r.msgs_per_sec)),
                            ("p50_us", Json::Num(r.p50_us)),
                            ("p99_us", Json::Num(r.p99_us)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "speedup_sharded_vs_baseline",
            Json::Arr(
                rank_counts
                    .iter()
                    .map(|&n| {
                        Json::obj([
                            ("ranks", Json::num_u64(u64::from(n))),
                            ("speedup", Json::Num(speedup_at(n))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    ft_bench::report::write_report("transport_throughput.json", &doc);

    // Sanity on every run: the wheel kept up and latencies are finite.
    for r in &rows {
        assert!(r.msgs_per_sec > 1000.0, "implausibly slow: {:.0} msgs/s", r.msgs_per_sec);
        assert!(r.p99_us > 0.0);
    }
    // Acceptance: ≥2x at the largest rank count — only meaningful when
    // the sharded config is real parallelism (see module docs).
    if !smoke && cores >= 4 && sharded > 1 {
        let s = speedup_at(*rank_counts.last().unwrap());
        assert!(
            s >= 2.0,
            "sharded transport must be >= 2x baseline at {} ranks, got {s:.2}x",
            rank_counts.last().unwrap()
        );
        println!("OK: {s:.2}x >= 2x at {} ranks", rank_counts.last().unwrap());
    } else {
        println!("speedup assertion skipped (smoke={smoke}, cores={cores}, sharded={sharded})");
    }
}
