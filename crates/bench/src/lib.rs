//! # ft-bench — experiment harnesses for the paper's evaluation
//!
//! Shared machinery for regenerating the paper's exhibits:
//!
//! * [`scenario`] — the Fig. 4 runtime scenarios (failure-free baselines,
//!   1/2/3 sequential failure recoveries, 3 simultaneous failures) over
//!   the fault-tolerant Lanczos application, with the overhead
//!   decomposition (computation / redo-work / re-initialize / fault
//!   detection) reconstructed from the job event log.
//! * [`fdscale`] — the Table I measurements: FD ping-scan time and
//!   failure detection + acknowledgment time versus node count.
//! * [`stats`] — small mean/σ helpers.
//! * [`table`] — fixed-width table printing for harness output.
//!
//! The binaries under `benches/` drive these and print paper-style
//! tables; see `EXPERIMENTS.md` at the workspace root for the mapping.

pub mod fdscale;
pub mod miniapp;
pub mod report;
pub mod scenario;
pub mod stats;
pub mod table;
