//! Table I measurements: FD ping-scan time and failure detection +
//! acknowledgment time versus node count.

use std::time::{Duration, Instant};

use ft_cluster::{FaultSchedule, Rank};
use ft_core::detector::{glo_health_chk, glo_health_chk_batched};
use ft_core::{EventKind, FtConfig, WorldLayout};
use ft_gaspi::{GaspiConfig, GaspiWorld, Timeout};

use crate::miniapp::{MiniApp, MiniConfig};

/// One Table I column.
#[derive(Debug, Clone)]
pub struct FdScalePoint {
    /// Node (= rank, one per node) count being scanned.
    pub nodes: u32,
    /// Failure-free full-scan durations.
    pub scan_times: Vec<Duration>,
    /// Kill-to-acknowledgment latencies.
    pub detect_times: Vec<Duration>,
}

/// Measure the FD's full ping-scan time over `nodes` healthy ranks,
/// `runs` times (paper: "Avg. ping scan time"), Listing 1's sequential
/// per-ping loop.
pub fn measure_scan(nodes: u32, runs: usize, seed: u64) -> Vec<Duration> {
    measure_scan_with(nodes, runs, seed, false)
}

/// [`measure_scan`] with a choice of scan strategy: `batched = true` uses
/// the epoch-batched fan-out scan (`glo_health_chk_batched`, one
/// transport pass per scan), `false` the sequential Listing 1 loop.
pub fn measure_scan_with(nodes: u32, runs: usize, seed: u64, batched: bool) -> Vec<Duration> {
    let world = GaspiWorld::new(GaspiConfig::new(nodes + 1).with_seed(seed));
    let fd = world.proc_handle(nodes);
    let targets: Vec<Rank> = (0..nodes).collect();
    (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            let failed = if batched {
                glo_health_chk_batched(&fd, &targets, Timeout::Ms(2000))
            } else {
                glo_health_chk(&fd, &targets, Timeout::Ms(2000), 1)
            };
            assert!(failed.is_empty(), "scan over healthy ranks found {failed:?}");
            t0.elapsed()
        })
        .collect()
}

/// Measure kill → acknowledgment latency under a live workload (paper:
/// "Failure detection and ack. time", one random kill per run).
///
/// The kill is injected only after *every* worker has finished setup (the
/// paper kills during steady state, at "a random instance during the
/// application run"); a watcher thread observes the job's event log,
/// waits a pseudo-random extra delay, kills the victim, and records the
/// exact kill instant. `scan_interval` matches the paper's 3 s pause
/// between scans (scaled); the expected latency is ≈ interval/2 + scan +
/// ack, flat in `nodes`.
pub fn measure_detection(
    nodes: u32,
    runs: usize,
    scan_interval: Duration,
    seed: u64,
) -> Vec<Duration> {
    let mut out = Vec::with_capacity(runs);
    for run in 0..runs {
        // Pseudo-random victim and extra delay, deterministic per (seed,
        // run).
        let h = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((run as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        let victim = (h % u64::from(nodes.saturating_sub(1).max(1))) as Rank;
        let extra = Duration::from_millis(5 + (h >> 32) % 40);

        let layout = WorldLayout::new(nodes, 2);
        let world = GaspiWorld::new(GaspiConfig::new(layout.total()).with_seed(seed + run as u64));
        // Keep the run alive well past the kill plus detection and
        // recovery. No busy-spin work: this harness also runs on small
        // machines where hundreds of spinning rank threads would starve
        // the detector (the workers' allreduce per step keeps the job
        // live and synchronized either way).
        let cfg = FtConfig::builder(layout)
            .max_iters(1_000_000) // ended by the stop flag below
            .checkpoint_every(0)
            .detector(ft_core::DetectorConfig { scan_interval, ..Default::default() })
            .abandon(Duration::from_secs(60))
            .build()
            .unwrap();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mc = MiniConfig { stop: Some(std::sync::Arc::clone(&stop)), ..MiniConfig::default() };

        // Watcher: wait for all workers' SetupDone, kill the victim, wait
        // for the acknowledgment + recovery to complete, then stop the run.
        let events = ft_core::EventLog::new();
        let ev2 = events.clone();
        let fault = world.fault();
        let kill_time = std::sync::Arc::new(parking_lot_mutex());
        let kt2 = std::sync::Arc::clone(&kill_time);
        let watcher = std::thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(30);
            let wait_for = |pred: &dyn Fn(&ft_core::Event) -> bool| -> bool {
                loop {
                    if ev2.first_where(|e| pred(e)).is_some() {
                        return true;
                    }
                    if Instant::now() > deadline {
                        return false;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            };
            // All workers through setup.
            loop {
                let ready = ev2.all_where(|e| matches!(e.kind, EventKind::SetupDone)).len() as u32;
                if ready >= nodes {
                    break;
                }
                if Instant::now() > deadline {
                    stop.store(true, std::sync::atomic::Ordering::Release);
                    return;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            std::thread::sleep(extra);
            fault.kill_rank(victim);
            *kt2.lock() = Some(ev2.now());
            // Let the recovery land, then end the run.
            let _ = wait_for(&|e| matches!(e.kind, EventKind::Restored { epoch: 1, .. }));
            stop.store(true, std::sync::atomic::Ordering::Release);
        });

        let report =
            ft_core::run_ft_job_with(&world, cfg, FaultSchedule::none(), events, move |ctx| {
                MiniApp::new(ctx, mc.clone())
            });
        watcher.join().expect("watcher thread");
        let killed_at = kill_time.lock().take();
        // The reporter reconstructs the epoch-1 timeline; its signal
        // instant (last worker observing the acknowledgment) is the end
        // of the paper's detection + acknowledgment window.
        let rep = ft_telemetry::OverheadReport::from_log(&report.events);
        let t_ack = rep.epochs.iter().find(|e| e.epoch == 1).map(|e| e.t_signal);
        if let (Some(k), Some(t)) = (killed_at, t_ack) {
            out.push(t.saturating_sub(k));
        }
    }
    out
}

fn parking_lot_mutex() -> parking_lot::Mutex<Option<Duration>> {
    parking_lot::Mutex::new(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_time_grows_with_nodes() {
        let small = crate::stats::mean(&measure_scan(8, 5, 1));
        let large = crate::stats::mean(&measure_scan(64, 5, 1));
        assert!(large > small, "scan must grow with node count: {small:?} vs {large:?}");
        // Roughly linear: 8× the nodes should be ≳3× the time (loose
        // bound; scheduling noise is real).
        assert!(large.as_secs_f64() > 2.0 * small.as_secs_f64());
    }

    #[test]
    fn detection_time_is_bounded_by_interval_plus_scan() {
        let interval = Duration::from_millis(30);
        let times = measure_detection(8, 3, interval, 42);
        assert_eq!(times.len(), 3, "every run must detect its failure");
        for t in &times {
            assert!(*t < Duration::from_millis(500), "detection took implausibly long: {t:?}");
        }
    }
}
