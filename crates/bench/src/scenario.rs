//! Fig. 4 scenario runner: the fault-tolerant Lanczos application under
//! the paper's seven runtime scenarios, with the overhead decomposition
//! reconstructed from the job event log.

use std::sync::Arc;
use std::time::Duration;

use ft_checkpoint::{CkptStats, Pfs, PfsConfig};
use ft_cluster::{FaultAction, FaultSchedule, Rank};
use ft_core::{run_ft_job, DetectorConfig, FtConfig, JobReport, StrategyKind, WorldLayout};
use ft_gaspi::{GaspiConfig, GaspiWorld};
use ft_matgen::graphene::Graphene;
use ft_solver::ft_lanczos::{FtLanczos, FtLanczosConfig, LanczosSummary};
use ft_telemetry::{OverheadReport, TelemetrySnapshot};

/// How failures are injected in a scenario.
#[derive(Debug, Clone)]
pub enum Kills {
    /// Failure-free.
    None,
    /// `exit(-1)` at fixed iterations for deterministic redo-work
    /// (paper Fig. 4 methodology).
    AtIterations(Vec<(Rank, u64)>),
    /// Simultaneous kills at a wall-clock offset (the node-failure case).
    SimultaneousAt(Vec<Rank>, Duration),
}

/// One Fig. 4 bar.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display name (matches the paper's x-axis labels).
    pub name: &'static str,
    /// Health check on (FD scanning) — `false` models the "w/o HC" bars.
    pub health_check: bool,
    /// Checkpointing on — `false` models the "w/o CP" bars.
    pub checkpointing: bool,
    /// Failure injection.
    pub kills: Kills,
    /// FD ping threads (8 for the simultaneous case, as in the paper).
    pub fd_threads: usize,
}

/// Shared workload parameters for all scenarios of one figure.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Worker count (the paper uses 252 workers + 4 idle on 256 nodes).
    pub workers: u32,
    /// Spare count including the FD (the paper reserves 4).
    pub spares: u32,
    /// Graphene sheet extent (dim = 2·lx·ly).
    pub lx: u64,
    /// Graphene sheet extent.
    pub ly: u64,
    /// Fixed iteration count (the paper uses 3500).
    pub iters: u64,
    /// Checkpoint interval (the paper uses 500).
    pub checkpoint_every: u64,
    /// FD scan interval.
    pub scan_interval: Duration,
    /// RNG seed.
    pub seed: u64,
    /// Recovery model the whole run uses (the strategy matrix reruns
    /// the same scenarios once per kind).
    pub strategy: StrategyKind,
}

impl Default for Workload {
    fn default() -> Self {
        Self {
            workers: 16,
            spares: 4,
            lx: 48,
            ly: 32,
            iters: 600,
            checkpoint_every: 100,
            scan_interval: Duration::from_millis(30),
            seed: 0xF164,
            strategy: StrategyKind::CheckpointRestart,
        }
    }
}

/// Decomposed result of one scenario run (one Fig. 4 bar).
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario name.
    pub name: &'static str,
    /// Total wall time (job start → last worker finished).
    pub total: Duration,
    /// Σ over epochs of fault detection + acknowledgment time.
    pub detect: Duration,
    /// Σ over epochs of re-initialization (group rebuild + restore).
    pub reinit: Duration,
    /// Σ over epochs of redo-work time.
    pub redo: Duration,
    /// Remainder: pure computation (incl. checkpoint writes).
    pub compute: Duration,
    /// Recovery rounds observed.
    pub recoveries: usize,
    /// Failures detected in total.
    pub failures: usize,
    /// All workers finished with bit-identical α/β.
    pub consistent: bool,
    /// The full telemetry report behind the decomposition (per-epoch
    /// timelines, scan statistics, counter registry, JSON rendering).
    pub telemetry: OverheadReport,
}

/// The paper's seven scenarios for a workload. Kills are placed a fixed
/// 60 %-of-interval past a checkpoint, so every failure costs the same
/// redo-work — the paper's "killed using exit(-1) at a specific iteration
/// in order to have a deterministic redo-work time".
pub fn fig4_scenarios(w: &Workload) -> Vec<Scenario> {
    let workers = w.workers;
    let iv = w.checkpoint_every;
    let kill_after = |ckpt_no: u64| ckpt_no * iv + (6 * iv) / 10;
    vec![
        Scenario {
            name: "w/o HC, w/o CP",
            health_check: false,
            checkpointing: false,
            kills: Kills::None,
            fd_threads: 1,
        },
        Scenario {
            name: "w/o HC, with CP",
            health_check: false,
            checkpointing: true,
            kills: Kills::None,
            fd_threads: 1,
        },
        Scenario {
            name: "with HC, with CP",
            health_check: true,
            checkpointing: true,
            kills: Kills::None,
            fd_threads: 1,
        },
        Scenario {
            name: "1 fail recovery",
            health_check: true,
            checkpointing: true,
            kills: Kills::AtIterations(vec![(2, kill_after(3))]),
            fd_threads: 1,
        },
        Scenario {
            name: "2 fail recovery",
            health_check: true,
            checkpointing: true,
            kills: Kills::AtIterations(vec![(2, kill_after(2)), (5 % workers, kill_after(4))]),
            fd_threads: 1,
        },
        Scenario {
            name: "3 fail recovery",
            health_check: true,
            checkpointing: true,
            kills: Kills::AtIterations(vec![
                (2, kill_after(1)),
                (5 % workers, kill_after(3)),
                (7 % workers, kill_after(5)),
            ]),
            fd_threads: 1,
        },
        Scenario {
            name: "3 sim. fail recovery",
            health_check: true,
            checkpointing: true,
            // Non-adjacent ranks so the neighbor replicas survive.
            kills: Kills::SimultaneousAt(
                vec![1, workers / 2, workers - 2],
                Duration::from_millis(120),
            ),
            fd_threads: 8,
        },
    ]
}

/// Run one scenario and decompose its runtime.
pub fn run_scenario(w: &Workload, sc: &Scenario) -> ScenarioResult {
    let layout = WorldLayout::new(w.workers, w.spares);
    let world = GaspiWorld::new(GaspiConfig::new(layout.total()).with_seed(w.seed));
    let cfg = FtConfig::builder(layout)
        .max_iters(w.iters)
        .checkpoint_every(if sc.checkpointing { w.checkpoint_every } else { 0 })
        .detector(DetectorConfig {
            scan_interval: if sc.health_check {
                w.scan_interval
            } else {
                Duration::from_secs(3600)
            },
            threads: sc.fd_threads,
            ..Default::default()
        })
        .abandon(Duration::from_secs(60))
        .strategy(w.strategy)
        .build()
        .expect("scenario config must validate");

    let gen = Graphene::new(w.lx, w.ly).with_nnn(-0.1);
    let app_cfg = Arc::new(FtLanczosConfig {
        pfs: Some(Pfs::new(PfsConfig::instant())),
        ..FtLanczosConfig::fixed_iters(Arc::new(gen))
    });

    let mut schedule = FaultSchedule::none();
    match &sc.kills {
        Kills::None => {}
        Kills::AtIterations(ks) => {
            for &(r, i) in ks {
                schedule = schedule.kill_rank_at_iteration(r, i);
            }
        }
        Kills::SimultaneousAt(ranks, at) => {
            for &r in ranks {
                schedule = schedule.timed(*at, FaultAction::KillRank(r));
            }
        }
    }

    let before = TelemetrySnapshot::of_world(&world);
    let report =
        run_ft_job(&world, cfg, schedule, move |ctx| FtLanczos::new(ctx, Arc::clone(&app_cfg)));
    let after = TelemetrySnapshot::of_world(&world);

    let mut result = decompose(sc.name, &report);
    // decompose() attached the per-rank checkpoint counters; widen the
    // registry with the world-held families now that we have the world.
    let ckpt = result.telemetry.counters.map(|c| c.ckpt).unwrap_or_default();
    result.telemetry.counters = Some(after.since(&before).with_ckpt(ckpt));
    result
}

/// Reconstruct the Fig. 4 stacked components from the event log, via the
/// telemetry reporter. The checkpoint counter family is merged from the
/// worker summaries; the transport/GASPI families need the world and are
/// attached by [`run_scenario`].
pub fn decompose(name: &'static str, report: &JobReport<LanczosSummary>) -> ScenarioResult {
    let summaries = report.worker_summaries();
    let mut ckpt = CkptStats::default();
    for (_, s) in &summaries {
        ckpt.merge(&s.ckpt);
    }
    let telemetry = OverheadReport::from_log(&report.events)
        .with_counters(TelemetrySnapshot::default().with_ckpt(ckpt));

    // Consistency: every worker finished and α histories agree.
    let consistent =
        !summaries.is_empty() && summaries.iter().all(|(_, s)| s.alphas == summaries[0].1.alphas);

    ScenarioResult {
        name,
        total: telemetry.total,
        detect: telemetry.detect,
        reinit: telemetry.reinit,
        redo: telemetry.redo,
        compute: telemetry.compute,
        recoveries: telemetry.recoveries(),
        failures: telemetry.failures,
        consistent,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature Fig. 4: baseline vs 1-failure scenario shapes hold.
    #[test]
    fn tiny_fig4_shapes() {
        let w = Workload {
            workers: 4,
            spares: 2,
            lx: 8,
            ly: 4,
            iters: 60,
            checkpoint_every: 20,
            ..Workload::default()
        };
        let base = run_scenario(
            &w,
            &Scenario {
                name: "base",
                health_check: true,
                checkpointing: true,
                kills: Kills::None,
                fd_threads: 1,
            },
        );
        assert!(base.consistent, "baseline must complete consistently");
        assert_eq!(base.recoveries, 0);
        assert_eq!(base.redo, Duration::ZERO);

        let one = run_scenario(
            &w,
            &Scenario {
                name: "1 fail",
                health_check: true,
                checkpointing: true,
                kills: Kills::AtIterations(vec![(1, 45)]),
                fd_threads: 1,
            },
        );
        assert!(one.consistent, "1-failure run must complete consistently");
        assert_eq!(one.recoveries, 1);
        assert_eq!(one.failures, 1);
        assert!(one.total > base.total, "failure adds overhead");
        assert!(one.redo > Duration::ZERO, "redo-work must be visible");
    }
}
