//! A minimal fault-tolerant application for detector-focused benchmarks.
//!
//! Each step is one tiny allreduce (the synchronization any real
//! application has) plus an optional spin of simulated compute, plus — for
//! the detector ablation — an optional *inline* detector tick on the
//! worker's critical path (the designs the paper rejected in §IV-A-b).

use std::time::Duration;

use ft_checkpoint::{Checkpointer, CheckpointerConfig, CkptStats, Dec, Enc};
use ft_core::baselines::{AllToAllDetector, InlineDetector, NeighborRingDetector};
use ft_core::{FtApp, FtCtx, FtResult, RecoveryPlan};
use ft_gaspi::{ReduceOp, Timeout};

const STATE_TAG: u32 = 0x30;
const FETCH: Duration = Duration::from_secs(5);

/// Which (if any) rejected detector design runs inside the workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InlineKind {
    /// No inline detection (the paper's dedicated-FD design).
    None,
    /// Every worker pings every other worker each interval.
    AllToAll,
    /// Every worker pings its ring successor each interval.
    NeighborRing,
}

/// Configuration for [`MiniApp`].
#[derive(Debug, Clone)]
pub struct MiniConfig {
    /// Busy-spin per step, simulating compute.
    pub work: Duration,
    /// Inline detector design and its scan interval.
    pub inline_kind: InlineKind,
    /// Inline scan interval.
    pub inline_interval: Duration,
    /// Per-ping timeout for inline detectors.
    pub inline_ping_timeout: Timeout,
    /// Optional external stop flag: once set, the workers agree (via an
    /// occasional reduction, so the decision stays collective) to end the
    /// run early. Used by harnesses that only need the job alive until an
    /// observation completes.
    pub stop: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

impl Default for MiniConfig {
    fn default() -> Self {
        Self {
            work: Duration::ZERO,
            inline_kind: InlineKind::None,
            inline_interval: Duration::from_millis(30),
            inline_ping_timeout: Timeout::Ms(200),
            stop: None,
        }
    }
}

/// The minimal app: deterministic accumulator + optional inline detector.
pub struct MiniApp {
    cfg: MiniConfig,
    acc: f64,
    ck: Checkpointer,
    inline: Option<Box<dyn InlineDetector + Send>>,
    /// Total time the inline detector stole from this worker.
    pub inline_overhead: Duration,
}

impl MiniApp {
    /// Build for one rank.
    pub fn new(ctx: &FtCtx, cfg: MiniConfig) -> Self {
        let ck = Checkpointer::new(&ctx.proc, CheckpointerConfig::for_tag(STATE_TAG), None);
        Self { cfg, acc: 0.0, ck, inline: None, inline_overhead: Duration::ZERO }
    }

    fn make_inline(&self, ctx: &FtCtx) -> Option<Box<dyn InlineDetector + Send>> {
        let me = ctx.proc.rank();
        let peers: Vec<u32> =
            (0..ctx.num_app_ranks()).map(|a| ctx.gaspi_of(a)).filter(|&g| g != me).collect();
        match self.cfg.inline_kind {
            InlineKind::None => None,
            InlineKind::AllToAll => Some(Box::new(AllToAllDetector::new(
                peers,
                self.cfg.inline_interval,
                self.cfg.inline_ping_timeout,
            ))),
            InlineKind::NeighborRing => Some(Box::new(NeighborRingDetector::new(
                me,
                peers,
                self.cfg.inline_interval,
                self.cfg.inline_ping_timeout,
            ))),
        }
    }
}

impl FtApp for MiniApp {
    type Summary = MiniSummary;

    fn setup(&mut self, ctx: &FtCtx) -> FtResult<()> {
        self.inline = self.make_inline(ctx);
        ctx.barrier_ft()?;
        Ok(())
    }

    fn join_as_rescue(&mut self, ctx: &FtCtx) -> FtResult<()> {
        // No pre-processing to reload: the mini app is plan-free.
        self.inline = self.make_inline(ctx);
        Ok(())
    }

    fn step(&mut self, ctx: &FtCtx, iter: u64) -> FtResult<bool> {
        if !self.cfg.work.is_zero() {
            let t0 = std::time::Instant::now();
            while t0.elapsed() < self.cfg.work {
                std::hint::spin_loop();
            }
        }
        if let Some(d) = self.inline.as_mut() {
            let t0 = std::time::Instant::now();
            let _suspects = d.tick(&ctx.proc);
            self.inline_overhead += t0.elapsed();
        }
        let x = f64::from(ctx.app_rank() + 1) * (iter + 1) as f64;
        let sum = ctx.allreduce_f64_ft(&[x], ReduceOp::Sum)?[0];
        self.acc += sum;
        // Collective early-stop check: every rank sees the same maximum,
        // so they all stop at the same iteration.
        if iter % 8 == 7 {
            if let Some(flag) = &self.cfg.stop {
                let mine = u64::from(flag.load(std::sync::atomic::Ordering::Acquire));
                let agreed = ctx.allreduce_u64_ft(&[mine], ReduceOp::Max)?[0];
                if agreed != 0 {
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }

    fn state_stream(&self) -> Option<(&Checkpointer, Duration)> {
        Some((&self.ck, FETCH))
    }

    fn export_state(&self, _ctx: &FtCtx, iter: u64) -> FtResult<Option<Vec<u8>>> {
        let mut e = Enc::new();
        e.u64(iter).f64(self.acc);
        Ok(Some(e.finish()))
    }

    fn load_state(&mut self, _ctx: &FtCtx, data: &[u8]) -> FtResult<u64> {
        let mut d = Dec::new(data);
        let iter = d.u64().unwrap_or(0);
        self.acc = d.f64().unwrap_or(0.0);
        Ok(iter)
    }

    fn reset_state(&mut self, _ctx: &FtCtx) -> FtResult<()> {
        self.acc = 0.0;
        Ok(())
    }

    fn rewire(&mut self, ctx: &FtCtx, plan: &RecoveryPlan) -> FtResult<()> {
        self.ck.refresh_failed(&plan.failed);
        self.inline = self.make_inline(ctx);
        Ok(())
    }

    fn finalize(&mut self, _ctx: &FtCtx) -> FtResult<MiniSummary> {
        self.ck.drain(FETCH);
        Ok(MiniSummary {
            acc: self.acc,
            inline_overhead: self.inline_overhead,
            ckpt: self.ck.stats(),
        })
    }
}

/// Per-worker result of a mini run.
#[derive(Debug, Clone)]
pub struct MiniSummary {
    /// Deterministic accumulator (correctness check).
    pub acc: f64,
    /// Time stolen by the inline detector.
    pub inline_overhead: Duration,
    /// This rank's checkpoint-tier counters.
    pub ckpt: CkptStats,
}
