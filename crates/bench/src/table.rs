//! Fixed-width table printing for harness output.

/// Simple left-header table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append one row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with per-column widths.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut w = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            w[i] = h.len();
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = w[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&line(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(w.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&line(r));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
