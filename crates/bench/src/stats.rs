//! Mean/σ over duration samples.

use std::time::Duration;

/// Mean of the samples (zero if empty).
pub fn mean(xs: &[Duration]) -> Duration {
    if xs.is_empty() {
        return Duration::ZERO;
    }
    xs.iter().sum::<Duration>() / xs.len() as u32
}

/// Sample standard deviation (zero for fewer than two samples).
pub fn std_dev(xs: &[Duration]) -> Duration {
    if xs.len() < 2 {
        return Duration::ZERO;
    }
    let m = mean(xs).as_secs_f64();
    let var = xs.iter().map(|x| (x.as_secs_f64() - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    Duration::from_secs_f64(var.sqrt())
}

/// `"mean ± σ"` in seconds with millisecond resolution.
pub fn fmt_mean_std(xs: &[Duration]) -> String {
    format!("{:.3}s ±{:.3}s", mean(xs).as_secs_f64(), std_dev(xs).as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [Duration::from_millis(2), Duration::from_millis(4), Duration::from_millis(6)];
        assert_eq!(mean(&xs), Duration::from_millis(4));
        let s = std_dev(&xs).as_secs_f64();
        assert!((s - 0.002).abs() < 1e-9, "{s}");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), Duration::ZERO);
        assert_eq!(std_dev(&[]), Duration::ZERO);
        assert_eq!(std_dev(&[Duration::from_millis(9)]), Duration::ZERO);
    }
}
