//! Where harnesses leave their machine-readable telemetry reports.

use std::path::PathBuf;

/// The workspace-level `target/telemetry/` directory, independent of the
/// process working directory (`cargo bench` runs bench binaries with the
/// *package* directory as CWD, which would otherwise scatter reports
/// into `crates/bench/target/`).
pub fn telemetry_dir() -> PathBuf {
    let target = std::env::var_os("CARGO_TARGET_DIR").map_or_else(
        || PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target")),
        PathBuf::from,
    );
    target.join("telemetry")
}

/// Write one JSON telemetry document into [`telemetry_dir`], reporting
/// the outcome on stdout/stderr (non-fatal on error).
pub fn write_report(file_name: &str, doc: &ft_telemetry::Json) {
    let out = telemetry_dir();
    let path = match std::fs::create_dir_all(&out).and_then(|()| out.canonicalize()) {
        Ok(canon) => canon.join(file_name),
        Err(_) => out.join(file_name),
    };
    match std::fs::write(&path, doc.render()) {
        Ok(()) => println!("telemetry report written to {}", path.display()),
        Err(e) => eprintln!("could not write telemetry report to {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_dir_is_absolute_workspace_target() {
        let d = telemetry_dir();
        assert!(d.is_absolute() || std::env::var_os("CARGO_TARGET_DIR").is_some());
        assert!(d.ends_with("target/telemetry"));
    }
}
